package engine

import (
	"time"

	"multiscalar/internal/obs"
)

// Engine-layer metrics. Registered unconditionally at init (cheap), but
// only written behind obs.On() guards — the scheduler's hot path pays a
// single atomic load when observability is off. None of these feed back
// into results: the byte-invariance test in internal/experiments holds
// rendered output identical with observability on or off.
var (
	obsRunsTotal  = obs.Default().Counter("engine.run.total")
	obsRunErrors  = obs.Default().Counter("engine.run.errors")
	obsRunSeconds = obs.Default().Histogram("engine.run.seconds", nil)
	obsQueueWait  = obs.Default().Histogram("engine.run.queue_wait_seconds", nil)
	obsBusyNanos  = obs.Default().Counter("engine.worker.busy_nanos")
	obsGrids      = obs.Default().Counter("engine.grid.total")
	obsGridRuns   = obs.Default().Counter("engine.grid.runs")
	obsGridSecs   = obs.Default().Histogram("engine.grid.seconds", nil)
	obsGridWorkers = obs.Default().Gauge("engine.grid.workers")

	// Pool metrics (the serving-side scheduler in pool.go). Sheds and
	// watchdog kills are exceptional-path events, recorded
	// unconditionally — they are precisely what an operator needs to see
	// even before turning full observability on.
	obsPoolSheds    = obs.Default().Counter("engine.pool.shed")
	obsPoolTimeouts = obs.Default().Counter("engine.pool.timeouts")
)

// doObserved wraps Do with per-run metrics and span tracing. worker is
// the zero-based worker lane; submitted is the queue-submit time (zero
// when the run never waited in a queue, i.e. the sequential path).
func doObserved(r Run, worker int, submitted time.Time) Result {
	if !obs.On() && r.Status == nil {
		return Do(r)
	}
	// Telemetry is on or the caller attached a status: keep the run's
	// progress record live. A caller-less observed run still registers
	// itself so /runz and /statusz see CLI and grid traffic too — but an
	// auto-created status is scrubbed from the echoed Result.Run so
	// observed and unobserved results stay deeply equal.
	auto := r.Status == nil
	if auto {
		r.Status = obs.Runs().Start(r.Label, r.Workload, r.Spec, r.Mode.String())
	}
	r.Status.SetPhase(obs.PhaseRunning)
	if !obs.On() {
		res := Do(r)
		finishStatus(r.Status, res.Err)
		return res
	}
	start := time.Now() //detlint:allow det-time (obs-gated duration metric; never rendered deterministically)
	res := Do(r)
	dur := time.Since(start)
	finishStatus(r.Status, res.Err)
	if auto {
		res.Run.Status = nil
	}

	obsRunsTotal.Inc()
	if res.Err != nil {
		obsRunErrors.Inc()
	}
	obsRunSeconds.Observe(dur.Seconds())
	obsBusyNanos.Add(dur.Nanoseconds())
	var queueWait time.Duration
	if !submitted.IsZero() {
		queueWait = start.Sub(submitted)
		obsQueueWait.Observe(queueWait.Seconds())
	}

	if tr := obs.ActiveTracer(); tr != nil {
		mode := r.Mode
		if mode == ModeAuto && res.Spec != nil {
			switch res.Spec.Class() {
			case ClassExit:
				mode = ModeExit
			case ClassTarget:
				mode = ModeTarget
			case ClassTask:
				mode = ModeTask
			case ClassPerfect:
				mode = ModeTiming
			}
		}
		args := map[string]any{
			"workload": r.Workload,
			"spec":     r.Spec,
			"mode":     mode.String(),
			"worker":   worker,
			"run_id":   r.Status.ID(),
		}
		if r.Label != "" {
			args["label"] = r.Label
		}
		if queueWait > 0 {
			args["queue_wait_us"] = queueWait.Microseconds()
		}
		if res.Err != nil {
			args["error"] = res.Err.Error()
		}
		// Lane 0 is reserved for experiment phases; workers start at 1.
		tr.Complete("run "+r.Workload, "engine", worker+1, start, dur, args)
	}
	return res
}
