package engine

import (
	"strings"
	"testing"

	"multiscalar/internal/core"
)

// TestParseRoundTrip pins the grammar: every accepted spelling parses to
// a spec whose String() is the canonical form, and the canonical form is
// a fixed point of Parse ∘ String.
func TestParseRoundTrip(t *testing.T) {
	cases := []struct{ in, want string }{
		{"perfect", "perfect"},
		{"  perfect \n", "perfect"},

		// Exit predictors.
		{"path:d7-o5-l6-c6-f3:leh2", "path:d7-o5-l6-c6-f3:leh2"},
		{"path:d0-o0-l0-c14:leh2", "path:d0-o0-l0-c14:leh2"},
		// An explicit -f1 is dropped canonically.
		{"path:d0-o0-l0-c14-f1:leh2", "path:d0-o0-l0-c14:leh2"},
		// Display names are accepted case-insensitively for automata.
		{"path:d7-o5-l6-c6-f3:LEH-2bit", "path:d7-o5-l6-c6-f3:leh2"},
		{"path:d7-o5-l6-c6-f3:Le", "path:d7-o5-l6-c6-f3:le"},
		// Flags canonicalize to a fixed order regardless of input order.
		{"path:d7-o5-l6-c6-f3:leh2:ssh:nosse", "path:d7-o5-l6-c6-f3:leh2:nosse:ssh"},
		{"path:d7-o5-l6-c6-f3:leh2:lat4", "path:d7-o5-l6-c6-f3:leh2:lat4"},
		{"path:d7-o5-l6-c6-f3:leh2:dlat8", "path:d7-o5-l6-c6-f3:leh2:dlat8"},
		{"path:d2-o4-l5-c5:vc2rand:seed7", "path:d2-o4-l5-c5:vc2rand:seed7"},
		{"global:d7-c14-i14:leh2", "global:d7-c14-i14:leh2"},
		{"per:d7-h12-t14-i14:leh2", "per:d7-h12-t14-i14:leh2"},
		{"ipath:d7:leh2", "ipath:d7:leh2"},
		{"iglobal:d7:le", "iglobal:d7:le"},
		{"iper:d7:vc3mru", "iper:d7:vc3mru"},

		// Target buffers.
		{"cttb:d7-o4-l4-c5-f3", "cttb:d7-o4-l4-c5-f3"},
		{"icttb:d7", "icttb:d7"},

		// Composed task predictors: an unstated RAS resolves to the
		// default depth in the canonical form.
		{"composed:path:d7-o5-l6-c6-f3:leh2:cttb:d7-o4-l4-c5-f3",
			"composed:path:d7-o5-l6-c6-f3:leh2:ras32:cttb:d7-o4-l4-c5-f3"},
		{"composed:path:d7-o5-l6-c6-f3:leh2:ras8:cttb:d7-o4-l4-c5-f3",
			"composed:path:d7-o5-l6-c6-f3:leh2:ras8:cttb:d7-o4-l4-c5-f3"},
		{"composed:path:d7-o5-l6-c6-f3:leh2:noras:cttb:d7-o4-l4-c5-f3",
			"composed:path:d7-o5-l6-c6-f3:leh2:noras:cttb:d7-o4-l4-c5-f3"},
		{"composed:path:d7-o5-l6-c6-f3:leh2:ras8",
			"composed:path:d7-o5-l6-c6-f3:leh2:ras8"},
		{"composed:global:d7-c14-i14:leh2:icttb:d7",
			"composed:global:d7-c14-i14:leh2:ras32:icttb:d7"},
		{"composed:path:d7-o5-l6-c6-f3:leh2:nosse:ras32:cttb:d7-o4-l4-c5-f3",
			"composed:path:d7-o5-l6-c6-f3:leh2:nosse:ras32:cttb:d7-o4-l4-c5-f3"},

		// Speculative-update flags ride on every class, last in the
		// canonical order; an explicit rlat0 is dropped canonically.
		{"path:d7-o5-l6-c6-f3:leh2:spec", "path:d7-o5-l6-c6-f3:leh2:spec"},
		{"path:d7-o5-l6-c6-f3:leh2:spec:rlat8", "path:d7-o5-l6-c6-f3:leh2:spec:rlat8"},
		{"path:d7-o5-l6-c6-f3:leh2:rlat8:spec", "path:d7-o5-l6-c6-f3:leh2:spec:rlat8"},
		{"path:d7-o5-l6-c6-f3:leh2:spec:rlat0", "path:d7-o5-l6-c6-f3:leh2:spec"},
		{"path:d7-o5-l6-c6-f3:leh2:dlat4:spec", "path:d7-o5-l6-c6-f3:leh2:dlat4:spec"},
		{"global:d7-c14-i14:leh2:spec", "global:d7-c14-i14:leh2:spec"},
		{"ipath:d7:leh2:spec:rlat2", "ipath:d7:leh2:spec:rlat2"},
		{"cttb:d7-o4-l4-c5-f3:spec", "cttb:d7-o4-l4-c5-f3:spec"},
		{"composed:path:d7-o5-l6-c6-f3:leh2:ras8:cttb:d7-o4-l4-c5-f3:spec:rlat8",
			"composed:path:d7-o5-l6-c6-f3:leh2:ras8:cttb:d7-o4-l4-c5-f3:spec:rlat8"},
		{"composed:path:d7-o5-l6-c6-f3:leh2:noras:spec",
			"composed:path:d7-o5-l6-c6-f3:leh2:noras:spec"},
		{"perfect:spec", "perfect:spec"},
		{"perfect:spec:rlat8", "perfect:spec:rlat8"},
	}
	for _, c := range cases {
		sp, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got := sp.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.want)
			continue
		}
		// Canonical form is a fixed point.
		again, err := Parse(c.want)
		if err != nil {
			t.Errorf("Parse(canonical %q): %v", c.want, err)
			continue
		}
		if got := again.String(); got != c.want {
			t.Errorf("canonical %q re-parses to %q", c.want, got)
		}
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"bogus",
		"path",                           // missing parameters
		"path:d7-o5-l6-c6-f3",            // missing automaton
		"path:d7-o5-l6-c6-f3:nope",       // unknown automaton
		"path:d7-o5-l6-c6-f3:leh2:ras32", // ras is not an exit flag
		"path:d2-o4-l5-c5-f0:leh2",       // zero folds
		"path:o5-d7-l6-c6:leh2",          // fields out of order
		"perfect:now",                    // perfect takes no parameters
		"cttb:d7-o4-l4-c5-f3:leh2",       // buffers take no automaton
		"icttb:d7:leh2",                  // ideal buffer likewise
		"global:d7-c14-i14",              // missing automaton
		"per:d7-h12-i14:leh2",            // missing field
		"composed:cttb:d7-o4-l4-c5-f3",   // composed needs an exit predictor
		"composed:path:d7-o5-l6-c6-f3:leh2:ras0:cttb:d7-o4-l4-c5-f3",        // RAS must be positive
		"composed:path:d7-o5-l6-c6-f3:leh2:ras32:noras:cttb:d7-o4-l4-c5-f3", // contradictory
		"composed:path:d7-o5-l6-c6-f3:leh2:ras32:cttb:d7-o4-l4-c5-f3:junk",  // trailing
		"path:d7-o5-l6-c6-f3:leh2:rlat8",        // rlat without spec
		"perfect:rlat8",                         // likewise on perfect
		"path:d7-o5-l6-c6-f3:leh2:lat4:spec",    // lat conflicts with spec
		"path:d7-o5-l6-c6-f3:leh2:spec:nosse",   // spec flags must come last
		"composed:path:d7-o5-l6-c6-f3:leh2:spec:ras8", // likewise before ras
		"path:d7-o5-l6-c6-f3:leh2:spec:spec:junk",     // trailing after flags
	}
	for _, s := range bad {
		if sp, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted: %v", s, sp)
		} else if strings.Contains(err.Error(), "engine: engine:") {
			t.Errorf("Parse(%q) error stutters: %v", s, err)
		}
	}
}

func TestSpecAccessors(t *testing.T) {
	std := MustParse("composed:path:d7-o5-l6-c6-f3:leh2:ras32:cttb:d7-o4-l4-c5-f3")
	if std.Class() != ClassTask || !std.HasExit() || !std.HasTarget() {
		t.Fatalf("std spec misclassified: %v %v %v", std.Class(), std.HasExit(), std.HasTarget())
	}
	if d := std.RASDepth(); d != core.DefaultRASDepth {
		t.Fatalf("RASDepth = %d", d)
	}
	if d := std.ExitDOLC(); d == nil || *d != core.MustDOLC(7, 5, 6, 6, 3) {
		t.Fatalf("ExitDOLC = %v", d)
	}
	if d := std.CTTBDOLC(); d == nil || *d != core.MustDOLC(7, 4, 4, 5, 3) {
		t.Fatalf("CTTBDOLC = %v", d)
	}

	noras := MustParse("composed:path:d7-o5-l6-c6-f3:leh2:noras:cttb:d7-o4-l4-c5-f3")
	if noras.RASDepth() != 0 {
		t.Fatalf("noras RASDepth = %d", noras.RASDepth())
	}

	exitOnly := MustParse("path:d7-o5-l6-c6-f3:leh2")
	if exitOnly.Class() != ClassExit || exitOnly.HasTarget() || exitOnly.RASDepth() != 0 {
		t.Fatalf("exit-only spec misclassified")
	}

	ideal := MustParse("iglobal:d7:leh2")
	if ideal.ExitDOLC() != nil {
		t.Fatalf("ideal GLOBAL has no DOLC, got %v", ideal.ExitDOLC())
	}

	icttb := MustParse("icttb:d7")
	if icttb.Class() != ClassTarget || icttb.CTTBDOLC() != nil {
		t.Fatalf("ideal CTTB misclassified")
	}

	perfect := MustParse("perfect")
	if perfect.Class() != ClassPerfect || perfect.HasExit() || perfect.HasTarget() {
		t.Fatalf("perfect misclassified")
	}

	if std.SpecUpdate() || std.RepairLat() != 0 || std.SpecLag() != 0 {
		t.Fatalf("idealized spec reports spec-update parameters")
	}
	spec := MustParse("path:d7-o5-l6-c6-f3:leh2:dlat4:spec:rlat8")
	if !spec.SpecUpdate() || spec.RepairLat() != 8 || spec.SpecLag() != 4 {
		t.Fatalf("spec flags not surfaced: %v %d %d", spec.SpecUpdate(), spec.RepairLat(), spec.SpecLag())
	}
	// In spec mode dlat is the session lag, not a DelayedUpdate wrap: the
	// built predictor must checkpoint (the wrapper cannot).
	p, err := spec.BuildExit()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(core.SpecExitPredictor); !ok {
		t.Fatalf("spec-mode BuildExit returned a non-checkpointable %T", p)
	}
	if _, err := core.NewSpecExitSession(p, spec.SpecLag()); err != nil {
		t.Fatalf("spec-mode exit predictor refused by session: %v", err)
	}
}

func TestBuildClasses(t *testing.T) {
	// A composed spec builds a task predictor named by its canonical form.
	std := "composed:path:d7-o5-l6-c6-f3:leh2:ras32:cttb:d7-o4-l4-c5-f3"
	p, err := Build(std)
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || p.Name() != std {
		t.Fatalf("Build(%q).Name() = %q", std, p.Name())
	}

	// Perfect builds to nil (the timing model's oracle convention).
	if p, err := Build("perfect"); err != nil || p != nil {
		t.Fatalf("Build(perfect) = %v, %v", p, err)
	}

	// Exit-only specs cannot build a task predictor.
	if _, err := Build("path:d7-o5-l6-c6-f3:leh2"); err == nil {
		t.Fatal("Build accepted a bare exit spec as a task predictor")
	}

	// But they build exit predictors; buffers build target buffers.
	for _, s := range []string{"path:d7-o5-l6-c6-f3:leh2", "global:d7-c14-i14:leh2",
		"per:d7-h12-t14-i14:leh2", "ipath:d7:leh2", "iglobal:d7:le", "iper:d7:vc3mru",
		"path:d7-o5-l6-c6-f3:leh2:dlat4"} {
		if _, err := MustParse(s).BuildExit(); err != nil {
			t.Errorf("BuildExit(%q): %v", s, err)
		}
	}
	for _, s := range []string{"cttb:d7-o4-l4-c5-f3", "icttb:d7"} {
		if _, err := MustParse(s).BuildTarget(); err != nil {
			t.Errorf("BuildTarget(%q): %v", s, err)
		}
	}

	// A target spec evaluated as a task predictor is CTTB-only.
	only, err := MustParse("cttb:d7-o5-l6-c6-f3").BuildTask()
	if err != nil || only == nil {
		t.Fatalf("cttb BuildTask: %v, %v", only, err)
	}
}
