package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestPoolSubmitMatchesDo checks the pool produces exactly what a direct
// Do produces for a real (small) run.
func TestPoolSubmitMatchesDo(t *testing.T) {
	p := NewPool(2, 4, 0)
	defer p.Close()

	r := Run{Workload: "boolmin", Spec: "path:d7-o5-l6-c6-f3:leh2", MaxSteps: 2000}
	got, err := p.Submit(context.Background(), r)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	want := Do(r)
	if got.Err != nil || want.Err != nil {
		t.Fatalf("run errors: pool=%v direct=%v", got.Err, want.Err)
	}
	if got.Exit != want.Exit {
		t.Fatalf("pool result %+v != direct %+v", got.Exit, want.Exit)
	}
}

// TestPoolSheds fills the queue with blocked runs and checks the next
// submit is rejected immediately with ErrPoolBusy.
func TestPoolSheds(t *testing.T) {
	p := NewPool(1, 1, 0) // capacity 2: one running + one queued
	defer p.Close()
	release := make(chan struct{})
	p.SetRunner(func(r Run) Result { <-release; return Result{Run: r} })

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = p.Submit(context.Background(), Run{Workload: "w"})
		}(i)
	}
	// Wait until both are admitted (capacity full).
	deadline := time.After(5 * time.Second)
	for p.Pending() != 2 {
		select {
		case <-deadline:
			t.Fatalf("pending = %d, want 2", p.Pending())
		default:
			time.Sleep(time.Millisecond)
		}
	}

	if _, err := p.Submit(context.Background(), Run{Workload: "w"}); !errors.Is(err, ErrPoolBusy) {
		t.Fatalf("overflow submit: err = %v, want ErrPoolBusy", err)
	}
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("admitted submit %d: %v", i, err)
		}
	}
}

// TestPoolCancelQueued checks a context cancelled while the run is still
// queued cancels it: the submitter returns the context error and the
// worker never evaluates the run.
func TestPoolCancelQueued(t *testing.T) {
	p := NewPool(1, 1, 0)
	defer p.Close()
	release := make(chan struct{})
	var mu sync.Mutex
	ran := map[string]bool{}
	p.SetRunner(func(r Run) Result {
		mu.Lock()
		ran[r.Workload] = true
		mu.Unlock()
		<-release
		return Result{Run: r}
	})

	// Occupy the single worker.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := p.Submit(context.Background(), Run{Workload: "running"}); err != nil {
			t.Errorf("blocking submit: %v", err)
		}
	}()
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		started := ran["running"]
		mu.Unlock()
		if started {
			break
		}
		select {
		case <-deadline:
			t.Fatal("worker never started the blocking run")
		default:
			time.Sleep(time.Millisecond)
		}
	}

	// Queue a second run, then cancel it before the worker can reach it.
	ctx, cancel := context.WithCancel(context.Background())
	var qerr error
	qdone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(qdone)
		_, qerr = p.Submit(ctx, Run{Workload: "queued"})
	}()
	for p.Pending() != 2 {
		select {
		case <-deadline:
			t.Fatalf("pending = %d, want 2", p.Pending())
		default:
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	// The worker is still blocked in the running job, so the cancelled
	// submit can only return via the cancel path; wait for it before
	// releasing the worker so the worker cannot win the CAS race.
	select {
	case <-qdone:
	case <-deadline:
		t.Fatal("cancelled submit did not return")
	}
	close(release)
	wg.Wait()

	if !errors.Is(qerr, context.Canceled) {
		t.Fatalf("cancelled submit: err = %v, want context.Canceled", qerr)
	}
	// Give the worker a moment to drain the skipped job, then check it
	// never evaluated the cancelled run.
	p.Close()
	mu.Lock()
	defer mu.Unlock()
	if ran["queued"] {
		t.Fatal("worker evaluated a run cancelled while queued")
	}
	if p.Pending() != 0 {
		t.Fatalf("pending = %d after close, want 0", p.Pending())
	}
}

// TestPoolAbandonRunningCollects checks a context cancelled after the
// run started does not lose the computation: Submit keeps waiting and
// returns the completed result.
func TestPoolAbandonRunningCollects(t *testing.T) {
	p := NewPool(1, 0, 0)
	defer p.Close()
	started := make(chan struct{})
	release := make(chan struct{})
	p.SetRunner(func(r Run) Result { close(started); <-release; return Result{Run: r} })

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var res Result
	var err error
	go func() {
		defer close(done)
		res, err = p.Submit(ctx, Run{Workload: "slow"})
	}()
	<-started
	cancel() // run already started: Submit must wait it out
	select {
	case <-done:
		t.Fatal("Submit returned before the running job completed")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	<-done
	if err != nil {
		t.Fatalf("Submit after abandon-collect: %v", err)
	}
	if res.Run.Workload != "slow" {
		t.Fatalf("collected result %+v, want the completed run", res.Run)
	}
}

// TestPoolWatchdog checks a hung run is abandoned with RunTimeoutError
// and the worker lane keeps serving afterwards.
func TestPoolWatchdog(t *testing.T) {
	p := NewPool(1, 1, 20*time.Millisecond)
	defer p.Close()
	hang := make(chan struct{})
	defer close(hang)
	first := true
	var mu sync.Mutex
	p.SetRunner(func(r Run) Result {
		mu.Lock()
		hangThis := first
		first = false
		mu.Unlock()
		if hangThis {
			<-hang
		}
		return Result{Run: r}
	})

	_, err := p.Submit(context.Background(), Run{Workload: "hung"})
	var te *RunTimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("hung submit: err = %v, want *RunTimeoutError", err)
	}

	res, err := p.Submit(context.Background(), Run{Workload: "after"})
	if err != nil {
		t.Fatalf("post-watchdog submit: %v", err)
	}
	if res.Run.Workload != "after" {
		t.Fatalf("post-watchdog result %+v", res.Run)
	}
}

// TestPoolClose checks Close drains admitted work and later submits are
// refused.
func TestPoolClose(t *testing.T) {
	p := NewPool(2, 2, 0)
	p.SetRunner(func(r Run) Result { return Result{Run: r} })
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Submit(context.Background(), Run{Workload: "w"})
		}()
	}
	wg.Wait()
	p.Close()
	p.Close() // idempotent
	if _, err := p.Submit(context.Background(), Run{Workload: "late"}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("post-close submit: err = %v, want ErrPoolClosed", err)
	}
	if p.Pending() != 0 {
		t.Fatalf("pending = %d after close, want 0", p.Pending())
	}
}
