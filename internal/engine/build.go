package engine

import (
	"fmt"

	"multiscalar/internal/core"
)

// BuildExit constructs the spec's exit predictor component. In
// speculative-update mode the exit's dlat<k> becomes the spec session's
// resolution lag instead of a core.DelayedUpdate wrapper (the wrapper
// cannot checkpoint, and the session already models the delay).
func (s *Spec) BuildExit() (core.ExitPredictor, error) {
	if s.exit == nil {
		return nil, fmt.Errorf("engine: spec %q has no exit predictor", s)
	}
	return s.exit.build(s.specUpdate)
}

// build constructs the exit predictor an ExitSpec describes. specMode
// suppresses the DelayedUpdate wrap (see Spec.BuildExit).
func (e *ExitSpec) build(specMode bool) (core.ExitPredictor, error) {
	var p core.ExitPredictor
	var err error
	switch e.Scheme {
	case SchemePath:
		p, err = core.NewPathExit(e.DOLC, e.Automaton, core.PathExitOptions{
			SkipSingleExit:        !e.NoSSE,
			SkipSingleExitHistory: e.SSH,
			TrainLatency:          e.Lat,
			Seed:                  e.Seed,
		})
	case SchemeGlobal:
		p, err = core.NewGlobalExit(e.Depth, e.Current, e.Index, e.Automaton)
	case SchemePer:
		p, err = core.NewPerExit(e.Depth, e.HRT, e.TaskBits, e.Index, e.Automaton)
	case SchemeIdealPath:
		p = core.NewIdealPath(e.Depth, e.Automaton)
	case SchemeIdealGlobal:
		p = core.NewIdealGlobal(e.Depth, e.Automaton)
	case SchemeIdealPer:
		p = core.NewIdealPer(e.Depth, e.Automaton)
	}
	if err != nil {
		return nil, err
	}
	if e.DLat > 0 && !specMode {
		p = core.NewDelayedUpdate(p, e.DLat)
	}
	return p, nil
}

// BuildTarget constructs the spec's target buffer component.
func (s *Spec) BuildTarget() (core.TargetBuffer, error) {
	if s.buf == nil {
		return nil, fmt.Errorf("engine: spec %q has no target buffer", s)
	}
	return s.buf.build()
}

// build constructs the target buffer a TargetSpec describes.
func (t *TargetSpec) build() (core.TargetBuffer, error) {
	if t.Ideal {
		return core.NewIdealCTTB(t.Depth), nil
	}
	return core.NewCTTB(t.DOLC)
}

// BuildTask constructs a full task predictor from the spec. A
// ClassTarget spec builds as a CTTB-only predictor; ClassPerfect returns
// (nil, nil), the timing model's always-correct predictor; a bare
// ClassExit spec is an error — wrap it in composed: to say explicitly
// which RAS and buffer (if any) ride along.
func (s *Spec) BuildTask() (core.TaskPredictor, error) {
	switch s.class {
	case ClassPerfect:
		return nil, nil
	case ClassTarget:
		buf, err := s.buf.build()
		if err != nil {
			return nil, err
		}
		return core.NewCTTBOnly(buf), nil
	case ClassTask:
		exit, err := s.exit.build(s.specUpdate)
		if err != nil {
			return nil, err
		}
		var ras *core.RAS
		if !s.noRAS {
			ras = core.NewRAS(s.rasDepth)
		}
		var buf core.TargetBuffer
		if s.buf != nil {
			if buf, err = s.buf.build(); err != nil {
				return nil, err
			}
		}
		return core.NewHeaderPredictor(s.String(), exit, ras, buf), nil
	default:
		return nil, fmt.Errorf("engine: exit-only spec %q cannot build a task predictor (wrap it in composed:)", s)
	}
}

// Build parses a spec string and constructs its task predictor — the
// one-call path for CLIs and harnesses.
func Build(spec string) (core.TaskPredictor, error) {
	sp, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	return sp.BuildTask()
}

// MustBuild is Build, panicking on error.
func MustBuild(spec string) core.TaskPredictor {
	p, err := Build(spec)
	if err != nil {
		panic(err)
	}
	return p
}

// MustBuildExit parses a spec string and constructs its exit predictor,
// panicking on error.
func MustBuildExit(spec string) core.ExitPredictor {
	p, err := MustParse(spec).BuildExit()
	if err != nil {
		panic(err)
	}
	return p
}

// MustBuildTarget parses a spec string and constructs its target buffer,
// panicking on error.
func MustBuildTarget(spec string) core.TargetBuffer {
	b, err := MustParse(spec).BuildTarget()
	if err != nil {
		panic(err)
	}
	return b
}
