package engine

// UnsupportedError reports a run configuration the engine recognizes but
// deliberately refuses: the combination is either physically meaningless
// (fault injection into the perfect oracle) or would silently degrade to
// a different model than the one requested (streaming a timing run). It
// exists so callers can distinguish "you asked for an unsupported
// combination" from parse, build, and runtime failures with errors.As,
// and so every refusal names both the feature and the reason instead of
// silently idealizing.
type UnsupportedError struct {
	// Feature is the run option that cannot be honoured ("fault
	// injection", "streaming replay", "speculative update", ...).
	Feature string
	// Reason explains the conflict in one sentence.
	Reason string
}

// Error implements the error interface.
func (e *UnsupportedError) Error() string {
	return "engine: " + e.Feature + ": " + e.Reason
}
