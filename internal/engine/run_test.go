package engine

import (
	"errors"
	"strings"
	"testing"

	"multiscalar/internal/isa"
	"multiscalar/internal/workload"
)

const stdSpec = "composed:path:d7-o5-l6-c6-f3:leh2:ras32:cttb:d7-o4-l4-c5-f3"

// TestDoTaskEndToEnd is the trace → predictor end-to-end test promised in
// internal/sim/functional: a functional-simulator trace replayed through
// an engine-built composed predictor scores every prediction step and
// lands at a plausible miss rate.
func TestDoTaskEndToEnd(t *testing.T) {
	const steps = 30000
	res := Do(Run{Workload: "exprc", Spec: stdSpec, MaxSteps: steps})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	tr, err := workload.CachedTrace("exprc", steps)
	if err != nil {
		t.Fatal(err)
	}
	if res.Task.Steps != tr.PredictionSteps() {
		t.Fatalf("scored %d steps, trace has %d", res.Task.Steps, tr.PredictionSteps())
	}
	if mr := res.Task.MissRate(); mr <= 0 || mr >= 0.5 {
		t.Fatalf("implausible miss rate %.4f for the standard predictor", mr)
	}
	if res.Task.ByKind[isa.KindBranch].Steps == 0 {
		t.Fatalf("no branch exits scored: %+v", res.Task.ByKind)
	}
	if res.Faulted {
		t.Fatal("fault-free run reports Faulted")
	}
	if res.Label() != stdSpec {
		t.Fatalf("Label = %q", res.Label())
	}
}

func TestDoModeAutoFollowsClass(t *testing.T) {
	exit := Do(Run{Workload: "exprc", Spec: "path:d7-o5-l6-c6-f3:leh2", MaxSteps: 20000})
	if exit.Err != nil {
		t.Fatal(exit.Err)
	}
	if exit.Exit.Steps == 0 || exit.Task.Steps != 0 {
		t.Fatalf("exit spec did not run in exit mode: %+v", exit)
	}

	target := Do(Run{Workload: "minilisp", Spec: "cttb:d7-o4-l4-c5-f3", MaxSteps: 20000})
	if target.Err != nil {
		t.Fatal(target.Err)
	}
	if target.Target.Steps == 0 {
		t.Fatal("target spec did not run in target mode")
	}

	// A Mode override evaluates the same buffer as a CTTB-only task
	// predictor instead.
	asTask := Do(Run{Workload: "minilisp", Spec: "cttb:d7-o4-l4-c5-f3", Mode: ModeTask, MaxSteps: 20000})
	if asTask.Err != nil {
		t.Fatal(asTask.Err)
	}
	if asTask.Task.Steps == 0 {
		t.Fatal("ModeTask override ignored")
	}
}

func TestDoTiming(t *testing.T) {
	perfect := Do(Run{Workload: "boolmin", Spec: "perfect", TimingSteps: 20000})
	if perfect.Err != nil {
		t.Fatal(perfect.Err)
	}
	if perfect.Timing.Cycles == 0 || perfect.Timing.IPC() <= 0 {
		t.Fatalf("empty timing result: %+v", perfect.Timing)
	}
	real := Do(Run{Workload: "boolmin", Spec: stdSpec, Mode: ModeTiming, TimingSteps: 20000})
	if real.Err != nil {
		t.Fatal(real.Err)
	}
	if real.Timing.IPC() > perfect.Timing.IPC() {
		t.Fatalf("real predictor IPC %.3f beats the perfect oracle %.3f",
			real.Timing.IPC(), perfect.Timing.IPC())
	}
}

func TestDoFaultedTaskRun(t *testing.T) {
	res := Do(Run{Workload: "exprc", Spec: stdSpec, Fault: "all=0.01,seed=9", MaxSteps: 30000})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Faulted || res.Injection.TotalInjected() == 0 {
		t.Fatalf("injection did not fire: faulted=%v stats=%+v", res.Faulted, res.Injection)
	}
	base := Do(Run{Workload: "exprc", Spec: stdSpec, MaxSteps: 30000})
	if res.Task.Steps != base.Task.Steps {
		t.Fatalf("faulted run scored %d steps, fault-free %d", res.Task.Steps, base.Task.Steps)
	}
}

func TestDoRejects(t *testing.T) {
	cases := []struct {
		name string
		run  Run
		want string
	}{
		{"unknown workload", Run{Workload: "nope", Spec: stdSpec, MaxSteps: 100}, "nope"},
		{"bad spec", Run{Workload: "exprc", Spec: "warp9", MaxSteps: 100}, "spec"},
		{"bad fault spec", Run{Workload: "exprc", Spec: stdSpec, Fault: "chaos", MaxSteps: 100}, "fault"},
		{"fault on exit run", Run{Workload: "exprc", Spec: "path:d7-o5-l6-c6-f3:leh2", Fault: "all=0.1,seed=1", MaxSteps: 100}, "cannot inject"},
		{"perfect as task replay", Run{Workload: "exprc", Spec: "perfect", Mode: ModeTask, MaxSteps: 100}, "timing"},
	}
	for _, c := range cases {
		res := Do(c.run)
		if res.Err == nil {
			t.Errorf("%s: accepted", c.name)
		} else if !strings.Contains(res.Err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, res.Err, c.want)
		}
	}
}

// TestDoSpecRouting pins the speculative-update support matrix: spec
// runs work in exit, task (cached and streamed) and timing modes, and
// every unsupported combination comes back as a typed
// *UnsupportedError — never a silently idealized run.
func TestDoSpecRouting(t *testing.T) {
	exit := Do(Run{Workload: "exprc", Spec: "path:d7-o5-l6-c6-f3:leh2:dlat4:spec", MaxSteps: 20000})
	if exit.Err != nil {
		t.Fatal(exit.Err)
	}
	if exit.Exit.Steps == 0 || exit.Exit.Rollbacks == 0 {
		t.Fatalf("spec exit run did not roll back: %+v", exit.Exit)
	}

	task := Do(Run{Workload: "exprc", Spec: stdSpec + ":spec", MaxSteps: 20000})
	if task.Err != nil {
		t.Fatal(task.Err)
	}
	if task.Task.Steps == 0 || task.Task.Rollbacks == 0 {
		t.Fatalf("spec task run did not roll back: %+v", task.Task)
	}
	streamed := Do(Run{Workload: "exprc", Spec: stdSpec + ":spec", MaxSteps: 20000, Stream: true})
	if streamed.Err != nil {
		t.Fatal(streamed.Err)
	}
	if streamed.Task.Steps != task.Task.Steps || streamed.Task.Rollbacks != task.Task.Rollbacks {
		t.Fatalf("streamed spec run diverges from cached: %+v vs %+v", streamed.Task, task.Task)
	}

	timing := Do(Run{Workload: "exprc", Spec: stdSpec + ":spec:rlat8", Mode: ModeTiming, TimingSteps: 20000})
	if timing.Err != nil {
		t.Fatal(timing.Err)
	}
	if timing.Timing.Rollbacks == 0 || timing.Timing.RepairCycles == 0 {
		t.Fatalf("spec timing run charged no repairs: %+v", timing.Timing)
	}

	rejected := []struct {
		name string
		run  Run
		want string
	}{
		{"spec target run", Run{Workload: "minilisp", Spec: "cttb:d7-o4-l4-c5-f3:spec", MaxSteps: 100},
			"speculative update"},
		{"spec faulted run", Run{Workload: "exprc", Spec: stdSpec + ":spec", Fault: "all=0.01,seed=1", MaxSteps: 100},
			"cannot inject"},
		{"streamed timing run", Run{Workload: "exprc", Spec: "perfect", Stream: true, TimingSteps: 100},
			"timing"},
		{"streamed faulted run", Run{Workload: "exprc", Spec: stdSpec, Fault: "all=0.01,seed=1", Stream: true, MaxSteps: 100},
			"cannot inject"},
	}
	for _, c := range rejected {
		res := Do(c.run)
		if res.Err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		var ue *UnsupportedError
		if !errors.As(res.Err, &ue) {
			t.Errorf("%s: error %v is not an *UnsupportedError", c.name, res.Err)
		}
		if !strings.Contains(res.Err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, res.Err, c.want)
		}
	}
}

// TestDoTimingRejectsFaultedPerfect is the regression test for the
// silent fault-spec drop: a timing run under the perfect predictor has no
// predictor state to corrupt, and used to ignore a non-empty fault spec
// without error (Result.Faulted stayed false). It must refuse, like the
// replay modes do.
func TestDoTimingRejectsFaultedPerfect(t *testing.T) {
	res := Do(Run{Workload: "exprc", Spec: "perfect", Fault: "all=0.01,seed=3", TimingSteps: 2000})
	if res.Err == nil {
		t.Fatalf("faulted perfect timing run accepted: faulted=%v", res.Faulted)
	}
	if !strings.Contains(res.Err.Error(), "perfect timing") {
		t.Errorf("error %q does not name the perfect-timing conflict", res.Err)
	}
	if res.Faulted {
		t.Error("Faulted set on a rejected run")
	}

	// Control: a real predictor in timing mode still injects.
	ok := Do(Run{Workload: "exprc", Spec: stdSpec, Mode: ModeTiming, Fault: "all=0.01,seed=3", TimingSteps: 2000})
	if ok.Err != nil {
		t.Fatal(ok.Err)
	}
	if !ok.Faulted {
		t.Error("faulted timing run with a real predictor did not inject")
	}
}
