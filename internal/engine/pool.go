package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"multiscalar/internal/obs"
)

// The pool is the engine's serving-side scheduler: where Execute evaluates
// a fixed grid and returns, a Pool stays up for the life of a process and
// accepts runs one at a time as they arrive — the shape a long-running
// evaluation service needs. It adds the three robustness behaviours a
// batch scheduler never had to care about: admission (a bounded queue
// that sheds instead of growing without bound), cancellation
// (context-aware submits that cancel queued work and abandon — but never
// corrupt — running work), and a per-run watchdog (a hung run is
// abandoned and its worker lane recovered, the resilient-mbench pattern).

// ErrPoolBusy is returned by Submit when the queue is full: the caller
// should shed load (an HTTP server maps it to 429).
var ErrPoolBusy = errors.New("engine: pool queue full")

// ErrPoolClosed is returned by Submit once Close has begun.
var ErrPoolClosed = errors.New("engine: pool closed")

// RunTimeoutError marks a run killed by the pool's per-run watchdog. The
// run's goroutine is abandoned (evaluation is read-only over shared
// traces, so an abandoned run cannot corrupt anything) and the worker
// lane moves on.
type RunTimeoutError struct {
	// Limit is the watchdog budget the run exceeded.
	Limit time.Duration
}

// Error implements error.
func (e *RunTimeoutError) Error() string {
	return fmt.Sprintf("engine: run exceeded the %v watchdog timeout", e.Limit)
}

// job states: a queued job is either picked up by a worker (started) or
// cancelled by its submitter (cancelled) — a single CAS decides the race.
const (
	jobQueued int32 = iota
	jobStarted
	jobCancelled
)

type poolJob struct {
	run       Run
	state     atomic.Int32
	submitted time.Time
	done      chan Result // buffered(1); closed never, receives exactly once unless cancelled
	err       error       // watchdog/cancel error, read only after done delivers or state=cancelled
}

// Pool is a persistent worker pool over engine runs with a bounded
// queue. Submit blocks until the run completes, sheds immediately when
// the queue is full, and honours context cancellation; Close drains.
// Results are computed by the same observed run path as Execute, so
// engine.run.* metrics, queue-wait histograms, and span traces cover
// pool traffic too.
type Pool struct {
	queue      chan *poolJob
	runTimeout time.Duration

	// runner is the evaluation function — a test seam so tests can
	// simulate slow or hung runs without real multi-second workloads.
	// Guarded by mu; nil means the engine default (doObserved).
	runner func(Run) Result

	mu      sync.Mutex
	closed  bool
	wg      sync.WaitGroup // worker goroutines
	pending atomic.Int64   // admitted, not yet finished (queued + running)
	workers int
}

// NewPool starts a pool of workers (<=0 means 1) with queue extra
// admission slots beyond the in-flight runs (<0 means 0) and an optional
// per-run watchdog (0 disables it). Close must be called to release the
// workers.
func NewPool(workers, queue int, runTimeout time.Duration) *Pool {
	if workers <= 0 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	p := &Pool{
		queue:      make(chan *poolJob, workers+queue),
		runTimeout: runTimeout,
		workers:    workers,
	}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker(w)
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Capacity returns the admission cap: the most runs that can be in
// flight (queued or running) before Submit sheds.
func (p *Pool) Capacity() int { return cap(p.queue) }

// Pending returns the number of admitted runs not yet finished. It is a
// snapshot — callers use it to derive backpressure hints (Retry-After),
// not for synchronization.
func (p *Pool) Pending() int { return int(p.pending.Load()) }

// SetRunner replaces the pool's evaluation function (nil restores the
// engine default). It exists so server tests can simulate slow, hung, or
// panicking runs deterministically; production code never calls it.
func (p *Pool) SetRunner(fn func(Run) Result) {
	p.mu.Lock()
	p.runner = fn
	p.mu.Unlock()
}

// Submit admits one run and blocks until it completes, the context is
// done, or the pool sheds it.
//
// Shedding is immediate: a full queue returns ErrPoolBusy without
// blocking, so an overloaded server answers "try later" in microseconds
// instead of stacking up waiters. A context cancelled while the run is
// still queued cancels it (the worker skips it untouched). A context
// cancelled after the run started does NOT abandon the computation:
// evaluation is uninterruptible by design (a tight replay loop over a
// shared read-only trace), so Submit keeps waiting and returns the
// completed result — the caller's deadline is the caller's problem
// (serve layers time out on their side and let the flight finish so the
// result can still be cached). A hung run is bounded by the watchdog.
func (p *Pool) Submit(ctx context.Context, r Run) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	j := &poolJob{run: r, done: make(chan Result, 1)}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return Result{}, ErrPoolClosed
	}
	// Admission is governed by the pending count, not channel occupancy:
	// a worker takes a job off the channel the moment it starts running
	// it, so the channel alone under-counts in-flight work. pending is
	// decremented only by workers as they drain jobs (started or
	// cancelled alike — a cancelled job still occupies its queue slot
	// until a worker skips past it), so pending <= cap(queue) implies
	// the send below can never block.
	if p.pending.Add(1) > int64(cap(p.queue)) {
		p.pending.Add(-1)
		p.mu.Unlock()
		obsPoolSheds.Inc()
		return Result{}, ErrPoolBusy
	}
	j.submitted = time.Now() //detlint:allow det-time (queue-wait stamp; metrics only, never rendered)
	r.Status.SetPhase(obs.PhaseQueued)
	p.queue <- j
	p.mu.Unlock()

	select {
	case res := <-j.done:
		return res, j.err
	case <-ctx.Done():
		if j.state.CompareAndSwap(jobQueued, jobCancelled) {
			// Still queued: the worker will see the cancelled state,
			// skip it, and release its admission slot.
			r.Status.Cancel()
			return Result{}, ctx.Err()
		}
		// Already running: abandon the wait? No — collect. The run is
		// uninterruptible and its result is still valuable (callers
		// cache it); the watchdog bounds how long this can take.
		res := <-j.done
		return res, j.err
	}
}

// worker is one pool lane: it takes queued jobs in order, skips
// cancelled ones, and survives hung runs by abandoning them.
func (p *Pool) worker(id int) {
	defer p.wg.Done()
	for j := range p.queue {
		if !j.state.CompareAndSwap(jobQueued, jobStarted) {
			p.pending.Add(-1) // cancelled while queued; free its slot
			continue
		}
		p.execute(j, id)
		p.pending.Add(-1)
	}
}

// execute runs one started job, with the watchdog when configured.
func (p *Pool) execute(j *poolJob, worker int) {
	p.mu.Lock()
	runner := p.runner
	p.mu.Unlock()
	// Running/terminal transitions are driven here as well as inside
	// doObserved so stubbed runners (SetRunner) keep the status honest;
	// SetPhase is forward-only, so the double reporting is harmless.
	j.run.Status.SetPhase(obs.PhaseRunning)
	do := func() Result {
		if runner != nil {
			return runner(j.run)
		}
		return doObserved(j.run, worker, j.submitted)
	}
	if p.runTimeout <= 0 {
		res := do()
		finishStatus(j.run.Status, res.Err)
		j.done <- res
		return
	}
	ch := make(chan Result, 1)
	go func() { ch <- do() }()
	t := time.NewTimer(p.runTimeout)
	select {
	case res := <-ch:
		t.Stop()
		finishStatus(j.run.Status, res.Err)
		j.done <- res
	case <-t.C:
		// Abandon the run goroutine (it finishes into its buffered
		// channel and is collected); recover the worker lane. The first
		// terminal phase is sticky, so the abandoned goroutine's eventual
		// finishStatus cannot overwrite the abandoned marker.
		j.err = &RunTimeoutError{Limit: p.runTimeout}
		obsPoolTimeouts.Inc()
		j.run.Status.Abandon()
		j.done <- Result{Run: j.run}
	}
}

// Close stops admission and waits for every admitted run to finish (or
// be watchdog-abandoned). It is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	close(p.queue)
	p.mu.Unlock()
	p.wg.Wait()
}
