package engine

import (
	"reflect"
	"testing"

	"multiscalar/internal/obs"
)

// testGrid is a small but heterogeneous grid: several workloads, every
// spec class, one faulted cell, and one deliberately broken cell.
func testGrid() []Run {
	var runs []Run
	for _, w := range []string{"exprc", "minilisp", "boolmin"} {
		runs = append(runs,
			Run{Workload: w, Spec: stdSpec, MaxSteps: 8000},
			Run{Workload: w, Spec: "path:d7-o5-l6-c6-f3:leh2", MaxSteps: 8000},
			Run{Workload: w, Spec: "cttb:d7-o4-l4-c5-f3", MaxSteps: 8000},
			Run{Workload: w, Spec: "perfect", TimingSteps: 5000},
		)
	}
	runs = append(runs,
		Run{Workload: "exprc", Spec: stdSpec, Fault: "all=0.01,seed=3", MaxSteps: 8000},
		Run{Workload: "exprc", Spec: "not-a-spec", MaxSteps: 8000},
	)
	return runs
}

// TestExecuteDeterministic is the scheduler's core contract: the same
// grid produces identical results at any worker count, in submission
// order. scripts/check.sh runs the package under -race, which also makes
// this a data-race probe over the shared workload cache.
func TestExecuteDeterministic(t *testing.T) {
	runs := testGrid()
	sequential := Execute(runs, 1)
	if len(sequential) != len(runs) {
		t.Fatalf("got %d results for %d runs", len(sequential), len(runs))
	}
	for i, res := range sequential {
		if res.Run != runs[i] {
			t.Fatalf("result %d echoes run %+v, want %+v", i, res.Run, runs[i])
		}
	}
	for _, workers := range []int{0, 2, 8, len(runs) + 7} {
		parallel := Execute(runs, workers)
		for i := range sequential {
			// Errors are compared by message and parsed specs by their
			// canonical string (two Parse calls yield distinct pointers);
			// everything else structurally.
			seq, par := sequential[i], parallel[i]
			seqErr, parErr := "", ""
			if seq.Err != nil {
				seqErr = seq.Err.Error()
			}
			if par.Err != nil {
				parErr = par.Err.Error()
			}
			if seqErr != parErr {
				t.Fatalf("workers=%d run %d: error %q vs %q", workers, i, parErr, seqErr)
			}
			seqSpec, parSpec := "", ""
			if seq.Spec != nil {
				seqSpec = seq.Spec.String()
			}
			if par.Spec != nil {
				parSpec = par.Spec.String()
			}
			if seqSpec != parSpec {
				t.Fatalf("workers=%d run %d: spec %q vs %q", workers, i, parSpec, seqSpec)
			}
			seq.Err, par.Err = nil, nil
			seq.Spec, par.Spec = nil, nil
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("workers=%d run %d (%s on %s): results diverge\nseq: %+v\npar: %+v",
					workers, i, runs[i].Spec, runs[i].Workload, seq, par)
			}
		}
	}
}

func TestExecuteErrorIsolation(t *testing.T) {
	results := Execute(testGrid(), 4)
	var bad, good int
	for _, res := range results {
		if res.Err != nil {
			bad++
		} else {
			good++
		}
	}
	if bad != 1 {
		t.Fatalf("%d failed runs, want exactly the broken-spec cell", bad)
	}
	if good != len(results)-1 {
		t.Fatalf("only %d of %d runs succeeded", good, len(results)-1)
	}
}

func TestExecuteEmpty(t *testing.T) {
	if res := Execute(nil, 8); len(res) != 0 {
		t.Fatalf("Execute(nil) returned %d results", len(res))
	}
}

// TestExecuteObserved checks the scheduler's observability hooks: with
// collection on and a tracer attached, a parallel grid emits one run
// span per cell (carrying workload/spec/worker args) and advances the
// engine counters — while the results stay exactly what an unobserved
// run produces.
func TestExecuteObserved(t *testing.T) {
	runs := testGrid()
	baseline := Execute(runs, 4)

	tr := obs.NewTracer()
	obs.SetEnabled(true)
	obs.SetTracer(tr)
	defer func() {
		obs.SetEnabled(false)
		obs.SetTracer(nil)
	}()

	before := obsRunsTotal.Value()
	observed := Execute(runs, 4)
	if got := obsRunsTotal.Value() - before; got != int64(len(runs)) {
		t.Errorf("engine.run.total advanced by %d, want %d", got, len(runs))
	}
	if got := tr.Len(); got != len(runs) {
		t.Errorf("tracer has %d spans, want %d", got, len(runs))
	}
	for _, ev := range tr.Events() {
		if ev.Cat != "engine" || ev.Ph != "X" {
			t.Fatalf("unexpected event %+v", ev)
		}
		if ev.Args["workload"] == "" || ev.Args["spec"] == "" {
			t.Fatalf("span missing workload/spec args: %+v", ev)
		}
		if ev.TID < 1 || ev.TID > 4 {
			t.Fatalf("span on lane %d, want a worker lane 1..4", ev.TID)
		}
	}
	if obsQueueWait.Count() == 0 {
		t.Error("queue-wait histogram empty after a parallel observed grid")
	}

	for i := range baseline {
		bs, os_ := "", ""
		if baseline[i].Err != nil {
			bs = baseline[i].Err.Error()
		}
		if observed[i].Err != nil {
			os_ = observed[i].Err.Error()
		}
		if bs != os_ {
			t.Fatalf("run %d: error drift under observation: %q vs %q", i, os_, bs)
		}
		b, o := baseline[i], observed[i]
		b.Err, o.Err, b.Spec, o.Spec = nil, nil, nil, nil
		if !reflect.DeepEqual(b, o) {
			t.Fatalf("run %d: results drift under observation\nbase: %+v\nobs:  %+v", i, b, o)
		}
	}
}
