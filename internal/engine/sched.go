package engine

import (
	"runtime"
	"sync"
	"time"

	"multiscalar/internal/obs"
)

// Execute evaluates a grid of runs across a pool of workers and returns
// one Result per run, in submission order.
//
// Determinism is the contract: every run is self-contained (per-run
// predictors, seeded RNGs, read-only shared traces), each worker writes
// only its own result slot, and the merge is by submission index — so
// the results, and any output formatted from them, are byte-identical at
// any worker count. workers <= 0 means GOMAXPROCS. Observability (span
// tracing, per-run timing, queue-wait histograms) records alongside but
// never feeds back into results.
//
// The first workers to demand an undecoded trace serialize briefly on
// the workload cache's once-guard; everything after that is parallel.
func Execute(runs []Run, workers int) []Result {
	results := make([]Result, len(runs))
	if len(runs) == 0 {
		return results
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(runs) {
		workers = len(runs)
	}

	observing := obs.On()
	var gridStart time.Time
	if observing {
		gridStart = time.Now() //detlint:allow det-time (obs-gated grid wall time; metrics only)
		obsGrids.Inc()
		obsGridRuns.Add(int64(len(runs)))
		obsGridWorkers.Set(int64(workers))
	}

	if workers <= 1 {
		for i := range runs {
			results[i] = doObserved(runs[i], 0, time.Time{})
		}
	} else {
		// The index channel is buffered to the whole grid so the producer
		// enqueues every run without serializing against worker pickup;
		// submit timestamps feed the queue-wait histogram and run spans.
		idx := make(chan int, len(runs))
		var submitted []time.Time
		if observing {
			submitted = make([]time.Time, len(runs))
		}
		for i := range runs {
			// Stamp each run as it is enqueued (not one timestamp for the
			// whole batch) so the queue-wait histogram measures actual time
			// in queue, not the enqueue loop's duration. The send into the
			// buffered channel happens-after the stamp, and workers read
			// submitted[i] only after receiving i.
			if submitted != nil {
				submitted[i] = time.Now() //detlint:allow det-time (obs-gated queue-latency stamp; metrics only)
			}
			idx <- i
		}
		close(idx)

		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(worker int) {
				defer wg.Done()
				for i := range idx {
					at := time.Time{}
					if submitted != nil {
						at = submitted[i]
					}
					results[i] = doObserved(runs[i], worker, at)
				}
			}(w)
		}
		wg.Wait()
	}

	if observing {
		obsGridSecs.Observe(time.Since(gridStart).Seconds())
	}
	return results
}
