package engine

import (
	"runtime"
	"sync"
)

// Execute evaluates a grid of runs across a pool of workers and returns
// one Result per run, in submission order.
//
// Determinism is the contract: every run is self-contained (per-run
// predictors, seeded RNGs, read-only shared traces), each worker writes
// only its own result slot, and the merge is by submission index — so
// the results, and any output formatted from them, are byte-identical at
// any worker count. workers <= 0 means GOMAXPROCS.
//
// The first workers to demand an undecoded trace serialize briefly on
// the workload cache's once-guard; everything after that is parallel.
func Execute(runs []Run, workers int) []Result {
	results := make([]Result, len(runs))
	if len(runs) == 0 {
		return results
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(runs) {
		workers = len(runs)
	}
	if workers <= 1 {
		for i := range runs {
			results[i] = Do(runs[i])
		}
		return results
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = Do(runs[i])
			}
		}()
	}
	for i := range runs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}
