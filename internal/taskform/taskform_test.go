package taskform

import (
	"reflect"
	"testing"

	"multiscalar/internal/asm"
	"multiscalar/internal/isa"
	"multiscalar/internal/program"
	"multiscalar/internal/tfg"
)

func mustAssemble(t *testing.T, src string) *program.Program {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

const loopProg = `
.entry main
.func main
    li r2, 0
    j  @head
head:
    slti r3, r2, 10
    br r3, @body, @done
body:
    addi r2, r2, 1
    j @head
done:
    halt
`

func TestBackwardEdgesAreExits(t *testing.T) {
	p := mustAssemble(t, loopProg)
	g, err := Partition(p, Options{})
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	head := p.Labels["head"]
	// The loop backedge (body -> head) must be an exit of whatever task
	// holds the body; no task region may contain a cycle through it.
	found := false
	for _, task := range g.Tasks {
		for ref, idx := range task.ExitIndex {
			if task.Exits[idx].HasTarget && task.Exits[idx].Target == head {
				_ = ref
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no task exits to the loop head — backedge was internalized")
	}
}

func TestRegionsAreAcyclic(t *testing.T) {
	p := mustAssemble(t, loopProg)
	g, err := Partition(p, Options{})
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	cfg, err := program.BuildCFG(p)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	for _, task := range g.Tasks {
		region := map[isa.Addr]bool{}
		for _, b := range task.Blocks {
			region[b] = true
		}
		// Internal edges must all point strictly forward.
		for _, b := range task.Blocks {
			blk := cfg.Blocks[b]
			for _, s := range blk.Succs {
				if region[s] && s <= b {
					if _, isExit := task.ExitIndex[tfg.ExitRef{At: blk.End, Slot: tfg.SlotPrimary}]; !isExit {
						if _, isExit2 := task.ExitIndex[tfg.ExitRef{At: blk.End, Slot: tfg.SlotSecondary}]; !isExit2 {
							t.Fatalf("task @%d has internal backward edge %d->%d", task.Start, b, s)
						}
					}
				}
			}
		}
	}
}

func TestExitLimitRespected(t *testing.T) {
	// A wide diamond fan-out that would exceed four exits if fully
	// internalized.
	src := `
.entry main
.func main
    li r2, 3
    j @d0
d0:
    seqi r3, r2, 0
    br r3, @c0, @d1
d1:
    seqi r3, r2, 1
    br r3, @c1, @d2
d2:
    seqi r3, r2, 2
    br r3, @c2, @d3
d3:
    seqi r3, r2, 3
    br r3, @c3, @c4
c0:
    j @end
c1:
    j @end
c2:
    j @end
c3:
    j @end
c4:
    j @end
end:
    halt
`
	p := mustAssemble(t, src)
	g, err := Partition(p, Options{})
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	for _, task := range g.Tasks {
		if n := task.NumExits(); n > tfg.MaxExits {
			t.Fatalf("task @%d has %d exits", task.Start, n)
		}
	}
}

func TestCallsTerminateTasks(t *testing.T) {
	src := `
.entry main
.func main
    jal @f
    jal @f
    halt
.func f
    ret
`
	p := mustAssemble(t, src)
	g, err := Partition(p, Options{})
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	// The task at main must end at the first jal: exactly one CALL exit.
	mainTask := g.TaskAt(p.Labels["main"])
	if mainTask == nil {
		t.Fatalf("no task at main")
	}
	if mainTask.NumExits() != 1 || mainTask.Exits[0].Kind != isa.KindCall {
		t.Fatalf("main task exits: %v", mainTask.Exits)
	}
	// Its return point must itself be a task.
	if g.TaskAt(mainTask.Exits[0].Return) == nil {
		t.Fatalf("call return point is not a task")
	}
	// f's task ends in a RETURN exit.
	f := g.TaskAt(p.Labels["f"])
	if f.NumExits() != 1 || f.Exits[0].Kind != isa.KindReturn {
		t.Fatalf("f task exits: %v", f.Exits)
	}
}

func TestExitTargetsAreTasks(t *testing.T) {
	p := mustAssemble(t, loopProg)
	g, err := Partition(p, Options{})
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	for _, task := range g.Tasks {
		for _, e := range task.Exits {
			if e.HasTarget && g.TaskAt(e.Target) == nil {
				t.Fatalf("task @%d exit targets non-task @%d", task.Start, e.Target)
			}
		}
	}
}

func TestSizeBudgetsLimitRegions(t *testing.T) {
	p := mustAssemble(t, loopProg)
	small, err := Partition(p, Options{MaxInstr: 4, MaxBlocks: 1})
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	big, err := Partition(p, Options{})
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	if small.NumTasks() < big.NumTasks() {
		t.Fatalf("smaller budgets should produce at least as many tasks (%d vs %d)",
			small.NumTasks(), big.NumTasks())
	}
	for _, task := range small.Tasks {
		if len(task.Blocks) > 1 {
			t.Fatalf("MaxBlocks=1 violated: task @%d has %d blocks", task.Start, len(task.Blocks))
		}
	}
}

func TestPartitionIsDeterministic(t *testing.T) {
	p1 := mustAssemble(t, loopProg)
	p2 := mustAssemble(t, loopProg)
	g1, err := Partition(p1, Options{})
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	g2, err := Partition(p2, Options{})
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	if !reflect.DeepEqual(g1.Order, g2.Order) {
		t.Fatalf("orders differ: %v vs %v", g1.Order, g2.Order)
	}
	for addr, t1 := range g1.Tasks {
		t2 := g2.Tasks[addr]
		if !reflect.DeepEqual(t1.Exits, t2.Exits) || !reflect.DeepEqual(t1.Blocks, t2.Blocks) {
			t.Fatalf("task @%d differs between runs", addr)
		}
	}
}

func TestSharedExitPointDeduplication(t *testing.T) {
	// Two branches in one region with the same external target must share
	// one exit point (the header stores one record).
	// @out sits before @a, so every edge to it is backward — always an
	// exit, never internalized.
	src := `
.entry main
.func main
    li r2, 0
    j @a
out:
    halt
a:
    br r2, @out, @b
b:
    br r2, @out, @c
c:
    j @out
`
	p := mustAssemble(t, src)
	g, err := Partition(p, Options{MaxInstr: 30, MaxBlocks: 8})
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	a := g.TaskAt(p.Labels["a"])
	if a == nil {
		t.Fatalf("no task at a")
	}
	out := p.Labels["out"]
	n := 0
	for _, e := range a.Exits {
		if e.HasTarget && e.Target == out {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("expected exactly one deduplicated exit to @out, got %d (exits %v)", n, a.Exits)
	}
}
