// Package taskform is the task-forming compiler pass: it partitions a
// program's control flow graph into Multiscalar tasks, producing a Task
// Flow Graph.
//
// The pass follows the constraints the paper states for the Wisconsin
// Multiscalar compiler:
//
//   - a task has at most tfg.MaxExits (4) exit points in its header;
//   - every exit is a control transfer instruction, typed per Table 1;
//   - calls, returns, and indirect transfers always terminate a task
//     (their targets begin new tasks);
//   - branch edges may stay inside a task or leave it; a conditional
//     branch only ends the task when the selected target leaves the
//     region.
//
// Task selection itself is heuristic in the paper ("the characteristics of
// tasks are dependent on the compiler heuristics used to break a program
// into tasks"); this pass grows regions greedily by breadth-first search
// from a seed block, bounded by the exit limit and a static size budget.
package taskform

import (
	"fmt"
	"sort"

	"multiscalar/internal/isa"
	"multiscalar/internal/program"
	"multiscalar/internal/tfg"
)

// Options tunes the task former.
type Options struct {
	// MaxInstr bounds the static instruction count of a task region.
	// Zero means DefaultMaxInstr.
	MaxInstr int
	// MaxBlocks bounds the number of basic blocks in a task region.
	// Zero means DefaultMaxBlocks.
	MaxBlocks int
}

// Default task-size budgets. Tasks in the Multiscalar literature average a
// few tens of instructions; 32 instructions / 8 blocks gives dynamic task
// sizes in that range for our workloads.
const (
	DefaultMaxInstr  = 32
	DefaultMaxBlocks = 8
)

func (o Options) withDefaults() Options {
	if o.MaxInstr == 0 {
		o.MaxInstr = DefaultMaxInstr
	}
	if o.MaxBlocks == 0 {
		o.MaxBlocks = DefaultMaxBlocks
	}
	return o
}

// Partition builds the Task Flow Graph for a program.
//
// Seeds are the program entry, every function entry, every call return
// point, and every label (labels are the only legal targets of indirect
// transfers). Tasks are then grown from each seed and from every exit
// target discovered along the way, so that every address reachable as a
// task exit target is itself a task start.
func Partition(p *program.Program, opts Options) (*tfg.Graph, error) {
	opts = opts.withDefaults()
	cfg, err := program.BuildCFG(p)
	if err != nil {
		return nil, fmt.Errorf("taskform: %w", err)
	}

	g := &tfg.Graph{Prog: p, Tasks: make(map[isa.Addr]*tfg.Task)}

	// Deterministic worklist: process seeds in ascending address order,
	// then newly discovered exit targets FIFO.
	seedSet := map[isa.Addr]bool{p.Entry: true}
	for _, a := range p.Functions {
		seedSet[a] = true
	}
	for _, a := range p.Labels {
		seedSet[a] = true
	}
	for _, in := range p.Code {
		if in.Op == isa.Jal || in.Op == isa.Jalr {
			seedSet[in.Link] = true
		}
	}
	var work []isa.Addr
	for a := range seedSet {
		work = append(work, a)
	}
	sort.Slice(work, func(i, j int) bool { return work[i] < work[j] })

	for len(work) > 0 {
		start := work[0]
		work = work[1:]
		if g.Tasks[start] != nil {
			continue
		}
		if cfg.Blocks[start] == nil {
			return nil, fmt.Errorf("taskform: task seed @%d is not a basic block leader", start)
		}
		t, err := grow(cfg, start, opts)
		if err != nil {
			return nil, err
		}
		t.Name = p.NameOf(start)
		g.Tasks[start] = t
		for _, e := range t.Exits {
			if e.HasTarget && g.Tasks[e.Target] == nil {
				work = append(work, e.Target)
			}
			if e.Kind.IsCall() && g.Tasks[e.Return] == nil {
				work = append(work, e.Return)
			}
		}
	}

	g.Finalize()
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("taskform: produced invalid TFG: %w", err)
	}
	return g, nil
}

// edge is an outgoing control-flow edge of a region under construction.
type edge struct {
	ref    tfg.ExitRef
	kind   isa.ControlKind
	target isa.Addr // statically-known target; 0 for dynamic edges
	static bool
	ret    isa.Addr // return point for calls
}

// grow builds a single task region rooted at start.
//
// The region is grown by BFS over static branch edges. A candidate block is
// admitted only if the region afterwards still respects the exit-count and
// size budgets. Call/return/indirect terminators never extend the region.
func grow(cfg *program.CFG, start isa.Addr, opts Options) (*tfg.Task, error) {
	region := map[isa.Addr]bool{start: true}
	queue := []isa.Addr{start}
	nInstr := cfg.Blocks[start].Len()

	for len(queue) > 0 {
		blk := queue[0]
		queue = queue[1:]
		term := cfg.Term(blk)
		// Only branch edges (Br, J) may be internalized.
		if k := term.Control(); k != isa.KindBranch {
			continue
		}
		for _, succ := range cfg.Blocks[blk].Succs {
			if succ <= blk {
				// Backward edge: always a task exit, never internalized.
				// Task regions are therefore acyclic and every loop
				// iteration is a separate dynamic task — the Multiscalar
				// sequencer's unit of speculation around loops.
				continue
			}
			if region[succ] {
				continue
			}
			sb := cfg.Blocks[succ]
			if sb == nil {
				return nil, fmt.Errorf("taskform: branch @%d targets non-leader @%d", cfg.Blocks[blk].End, succ)
			}
			if len(region) >= opts.MaxBlocks || nInstr+sb.Len() > opts.MaxInstr {
				continue
			}
			region[succ] = true
			if exits, _ := enumerateExits(cfg, region); len(exits) > tfg.MaxExits {
				delete(region, succ)
				continue
			}
			nInstr += sb.Len()
			queue = append(queue, succ)
		}
	}

	exits, index := enumerateExits(cfg, region)
	if len(exits) > tfg.MaxExits {
		// Cannot happen for a single block (a block has at most two
		// out-edges) and growth rejects violations, but guard anyway.
		return nil, fmt.Errorf("taskform: task @%d has %d exits", start, len(exits))
	}

	blocks := make([]isa.Addr, 0, len(region))
	halts := false
	for a := range region {
		blocks = append(blocks, a)
		if cfg.Term(a).Op == isa.Halt {
			halts = true
		}
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })

	return &tfg.Task{
		Start:     start,
		Blocks:    blocks,
		Exits:     exits,
		ExitIndex: index,
		NumInstr:  nInstr,
		Halts:     halts,
	}, nil
}

// enumerateExits computes the exit table for a region: every edge leaving
// the region, deduplicated into exit points by (kind, target, return).
// Iteration is in ascending block address order so exit numbering is
// deterministic.
func enumerateExits(cfg *program.CFG, region map[isa.Addr]bool) ([]tfg.ExitSpec, map[tfg.ExitRef]int) {
	blocks := make([]isa.Addr, 0, len(region))
	for a := range region {
		blocks = append(blocks, a)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })

	type key struct {
		kind      isa.ControlKind
		target    isa.Addr
		hasTarget bool
		ret       isa.Addr
	}
	var exits []tfg.ExitSpec
	index := make(map[tfg.ExitRef]int)
	byKey := make(map[key]int)

	addExit := func(ref tfg.ExitRef, spec tfg.ExitSpec) {
		k := key{spec.Kind, spec.Target, spec.HasTarget, spec.Return}
		i, ok := byKey[k]
		if !ok {
			i = len(exits)
			exits = append(exits, spec)
			byKey[k] = i
		}
		index[ref] = i
	}

	for _, blk := range blocks {
		b := cfg.Blocks[blk]
		term := cfg.Prog.Code[b.End]
		// A branch edge leaves the task when its target is outside the
		// region or behind the source block (backward edges are always
		// exits; see grow).
		leaves := func(target isa.Addr) bool {
			return !region[target] || target <= blk
		}
		switch term.Op {
		case isa.Br:
			if leaves(term.TargetA) {
				addExit(tfg.ExitRef{At: b.End, Slot: tfg.SlotPrimary},
					tfg.ExitSpec{Kind: isa.KindBranch, Target: term.TargetA, HasTarget: true})
			}
			if leaves(term.TargetB) {
				addExit(tfg.ExitRef{At: b.End, Slot: tfg.SlotSecondary},
					tfg.ExitSpec{Kind: isa.KindBranch, Target: term.TargetB, HasTarget: true})
			}
		case isa.J:
			if leaves(term.TargetA) {
				addExit(tfg.ExitRef{At: b.End, Slot: tfg.SlotPrimary},
					tfg.ExitSpec{Kind: isa.KindBranch, Target: term.TargetA, HasTarget: true})
			}
		case isa.Jal:
			addExit(tfg.ExitRef{At: b.End, Slot: tfg.SlotPrimary},
				tfg.ExitSpec{Kind: isa.KindCall, Target: term.TargetA, HasTarget: true, Return: term.Link})
		case isa.Ret:
			addExit(tfg.ExitRef{At: b.End, Slot: tfg.SlotPrimary},
				tfg.ExitSpec{Kind: isa.KindReturn})
		case isa.Jr:
			addExit(tfg.ExitRef{At: b.End, Slot: tfg.SlotPrimary},
				tfg.ExitSpec{Kind: isa.KindIndirectBranch})
		case isa.Jalr:
			addExit(tfg.ExitRef{At: b.End, Slot: tfg.SlotPrimary},
				tfg.ExitSpec{Kind: isa.KindIndirectCall, Return: term.Link})
		case isa.Halt:
			// Halt ends the dynamic task stream; it is not an exit point.
		}
	}
	return exits, index
}
