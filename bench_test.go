package multiscalar_test

// The benchmark harness: one testing.B benchmark per paper table/figure
// (each regenerates that experiment's rows on truncated traces sized for
// benchmarking; `cmd/mbench` produces the full-trace numbers recorded in
// EXPERIMENTS.md), plus micro-benchmarks of the predictor hot paths and
// the substrate (interpreter, compiler, task former).
//
// Run with:
//
//	go test -bench=. -benchmem

import (
	"bytes"
	"io"
	"testing"

	"multiscalar/internal/core"
	"multiscalar/internal/engine"
	"multiscalar/internal/experiments"
	"multiscalar/internal/isa"
	"multiscalar/internal/msl"
	"multiscalar/internal/sim/functional"
	"multiscalar/internal/sim/timing"
	"multiscalar/internal/taskform"
	"multiscalar/internal/trace"
	"multiscalar/internal/workload"
)

// benchCfg truncates experiment traces so a full -bench=. pass stays in
// the minutes range while still exercising every code path of every
// experiment.
var benchCfg = experiments.Config{MaxSteps: 120000, TimingSteps: 60000}

func benchExperiment(b *testing.B, name string) {
	r, err := experiments.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the shared workload caches outside the timer.
	for _, w := range workload.All() {
		if _, err := w.Graph(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Run(io.Discard, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B)   { benchExperiment(b, "table2") }
func BenchmarkFigure3(b *testing.B)  { benchExperiment(b, "fig3") }
func BenchmarkFigure4(b *testing.B)  { benchExperiment(b, "fig4") }
func BenchmarkFigure6(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFigure7(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFigure8(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFigure10(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFigure11(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkFigure12(b *testing.B) { benchExperiment(b, "fig12") }
func BenchmarkTable3(b *testing.B)   { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B)   { benchExperiment(b, "table4") }

func BenchmarkIntraTask(b *testing.B) { benchExperiment(b, "intratask") }

func BenchmarkAblationFolding(b *testing.B)       { benchExperiment(b, "ablation-folding") }
func BenchmarkAblationSingleExit(b *testing.B)    { benchExperiment(b, "ablation-singleexit") }
func BenchmarkAblationRAS(b *testing.B)           { benchExperiment(b, "ablation-ras") }
func BenchmarkAblationRealHistories(b *testing.B) { benchExperiment(b, "ablation-real-histories") }
func BenchmarkAblationUpdateDelay(b *testing.B)   { benchExperiment(b, "ablation-updatedelay") }
func BenchmarkSpecUpdate(b *testing.B)            { benchExperiment(b, "specupdate") }

// ---- predictor hot paths -------------------------------------------------

// benchTrace returns a shared truncated trace for microbenchmarks.
func benchTrace(b *testing.B, name string, steps int) *trace.Trace {
	b.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := w.TraceN(steps)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkPathExitPredict measures the per-step cost of the real
// path-based exit predictor (the hardware-modelled hot path).
func BenchmarkPathExitPredict(b *testing.B) {
	tr := benchTrace(b, "exprc", 200000)
	p := engine.MustBuildExit("path:d7-o5-l6-c6-f3:leh2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := tr.Steps[i%tr.PredictionSteps()]
		t := tr.Graph.TaskAt(s.Task)
		_ = p.PredictExit(t)
		p.UpdateExit(t, int(s.Exit))
	}
}

// BenchmarkIdealPathPredict measures the alias-free predictor's map-keyed
// step cost.
func BenchmarkIdealPathPredict(b *testing.B) {
	tr := benchTrace(b, "exprc", 200000)
	p := core.NewIdealPath(7, core.LEH2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := tr.Steps[i%tr.PredictionSteps()]
		t := tr.Graph.TaskAt(s.Task)
		_ = p.PredictExit(t)
		p.UpdateExit(t, int(s.Exit))
	}
}

// BenchmarkCTTBStep measures the correlated target buffer's per-step cost.
func BenchmarkCTTBStep(b *testing.B) {
	buf := engine.MustBuildTarget("cttb:d7-o4-l4-c5-f3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur := isa.Addr(i & 0xFFFF)
		_, _ = buf.Lookup(cur)
		buf.Train(cur, cur+1)
		buf.Advance(cur)
	}
}

// BenchmarkDOLCIndex measures the index-generation fold alone.
func BenchmarkDOLCIndex(b *testing.B) {
	d := core.MustDOLC(7, 5, 6, 6, 3)
	var h core.PathHistory
	for i := 0; i < 8; i++ {
		h.Push(isa.Addr(i * 37))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Index(&h, isa.Addr(i))
	}
}

// BenchmarkHeaderPredictorStep measures the fully composed predictor.
func BenchmarkHeaderPredictorStep(b *testing.B) {
	tr := benchTrace(b, "minilisp", 200000)
	p := engine.MustBuild("composed:path:d7-o5-l6-c6-f3:leh2:ras32:cttb:d7-o4-l4-c5-f3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := tr.Steps[i%tr.PredictionSteps()]
		t := tr.Graph.TaskAt(s.Task)
		_ = p.Predict(t)
		p.Update(t, core.Outcome{Exit: int(s.Exit), Target: s.Target})
	}
}

// ---- replay loops (the sweep substrate's hot path) -----------------------
//
// BenchmarkEvaluate{Exit,Indirect,Task} isolate the replay loop itself:
// the predictor is a minimal probe, so ns/op measures the per-step loop
// machinery (map lookups, exit decoding, ByKind accounting) that the
// resolved fast path eliminates. The ...Unresolved twins run the
// reference path over the same trace, so the fast-path speedup is the
// ratio of each pair. The Composed/Path variants replay a real paper
// predictor for end-to-end numbers. All of these feed the benchdiff
// regression gate (scripts/benchdiff, BENCH_baseline.json).

const benchReplaySteps = 120000

// benchResolvedTrace returns the shared truncated trace and its resolved
// sidecar (workload.CachedTrace memoizes both process-wide).
func benchResolvedTrace(b *testing.B, name string) (*trace.Trace, *trace.Resolved) {
	b.Helper()
	tr, err := workload.CachedTrace(name, benchReplaySteps)
	if err != nil {
		b.Fatal(err)
	}
	rt, err := tr.Resolved()
	if err != nil {
		b.Fatal(err)
	}
	return tr, rt
}

// reportPerStep converts whole-replay ns/op into ns/step.
func reportPerStep(b *testing.B, tr *trace.Trace) {
	reportPerStepN(b, tr.PredictionSteps())
}

func reportPerStepN(b *testing.B, predSteps int) {
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*int64(predSteps)), "ns/step")
}

func BenchmarkEvaluateExit(b *testing.B) {
	tr, rt := benchResolvedTrace(b, "exprc")
	p := &probeExit{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.EvaluateExitResolved(rt, p)
	}
	reportPerStep(b, tr)
}

func BenchmarkEvaluateExitUnresolved(b *testing.B) {
	tr, _ := benchResolvedTrace(b, "exprc")
	p := &probeExit{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.EvaluateExitUnresolved(tr, p)
	}
	reportPerStep(b, tr)
}

func BenchmarkEvaluateExitPath(b *testing.B) {
	tr, rt := benchResolvedTrace(b, "exprc")
	p := engine.MustBuildExit("path:d7-o5-l6-c6-f3:leh2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.EvaluateExitResolved(rt, p)
	}
	reportPerStep(b, tr)
}

func BenchmarkEvaluateExitPathUnresolved(b *testing.B) {
	tr, _ := benchResolvedTrace(b, "exprc")
	p := engine.MustBuildExit("path:d7-o5-l6-c6-f3:leh2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.EvaluateExitUnresolved(tr, p)
	}
	reportPerStep(b, tr)
}

func BenchmarkEvaluateIndirect(b *testing.B) {
	tr, rt := benchResolvedTrace(b, "minilisp")
	buf := &probeBuf{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.EvaluateIndirectResolved(rt, buf)
	}
	reportPerStep(b, tr)
}

func BenchmarkEvaluateIndirectUnresolved(b *testing.B) {
	tr, _ := benchResolvedTrace(b, "minilisp")
	buf := &probeBuf{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.EvaluateIndirectUnresolved(tr, buf)
	}
	reportPerStep(b, tr)
}

func BenchmarkEvaluateTask(b *testing.B) {
	tr, rt := benchResolvedTrace(b, "exprc")
	p := &probeTask{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.EvaluateTaskResolved(rt, p)
	}
	reportPerStep(b, tr)
}

func BenchmarkEvaluateTaskUnresolved(b *testing.B) {
	tr, _ := benchResolvedTrace(b, "exprc")
	p := &probeTask{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.EvaluateTaskUnresolved(tr, p)
	}
	reportPerStep(b, tr)
}

func BenchmarkEvaluateTaskComposed(b *testing.B) {
	tr, rt := benchResolvedTrace(b, "minilisp")
	p := engine.MustBuild("composed:path:d7-o5-l6-c6-f3:leh2:ras32:cttb:d7-o4-l4-c5-f3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.EvaluateTaskResolved(rt, p)
	}
	reportPerStep(b, tr)
}

func BenchmarkEvaluateTaskComposedUnresolved(b *testing.B) {
	tr, _ := benchResolvedTrace(b, "minilisp")
	p := engine.MustBuild("composed:path:d7-o5-l6-c6-f3:leh2:ras32:cttb:d7-o4-l4-c5-f3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.EvaluateTaskUnresolved(tr, p)
	}
	reportPerStep(b, tr)
}

// ---- block kernels (columnar replay) -------------------------------------
//
// The ...Blocks benchmarks replay the same workloads through the
// block-wise kernels over the columnar encoding. With the probes' block
// fast paths, interface dispatch costs one call per 4096-step block
// instead of two per step — the floor the resolved path could not cross.
// BenchmarkEvaluateExitPathBlocks replays the real PATH predictor
// through its inlined ReplayExitBlock for the end-to-end number.

// benchColumnarTrace returns the shared truncated columnar trace
// (workload.CachedColumnar memoizes process-wide).
func benchColumnarTrace(b *testing.B, name string) *trace.Columnar {
	b.Helper()
	c, err := workload.CachedColumnar(name, benchReplaySteps)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func BenchmarkEvaluateExitBlocks(b *testing.B) {
	c := benchColumnarTrace(b, "exprc")
	p := &probeExit{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EvaluateExitBlocks(c.Blocks(), p); err != nil {
			b.Fatal(err)
		}
	}
	reportPerStepN(b, c.PredictionSteps())
}

func BenchmarkEvaluateExitPathBlocks(b *testing.B) {
	c := benchColumnarTrace(b, "exprc")
	p := engine.MustBuildExit("path:d7-o5-l6-c6-f3:leh2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EvaluateExitBlocks(c.Blocks(), p); err != nil {
			b.Fatal(err)
		}
	}
	reportPerStepN(b, c.PredictionSteps())
}

func BenchmarkEvaluateIndirectBlocks(b *testing.B) {
	c := benchColumnarTrace(b, "minilisp")
	buf := &probeBuf{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EvaluateIndirectBlocks(c.Blocks(), buf); err != nil {
			b.Fatal(err)
		}
	}
	reportPerStepN(b, c.PredictionSteps())
}

func BenchmarkEvaluateTaskBlocks(b *testing.B) {
	c := benchColumnarTrace(b, "exprc")
	p := &probeTask{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EvaluateTaskBlocks(c.Blocks(), p); err != nil {
			b.Fatal(err)
		}
	}
	reportPerStepN(b, c.PredictionSteps())
}

// ---- speculative-update kernels ------------------------------------------
//
// The ...SpecBlocks benchmarks replay the block kernels in speculative-
// update mode (lag 4) with real paper predictors, so every mispredict
// drains the predictor-owned undo ring through a checkpoint repair —
// rollback-heavy by construction. The gap to the idealized
// BenchmarkEvaluateExitPathBlocks twin is the speculation tax; benchdiff
// holds allocs/op at the idealized level (repair never allocates).

func BenchmarkEvaluateExitSpecBlocks(b *testing.B) {
	c := benchColumnarTrace(b, "exprc")
	p := engine.MustBuildExit("path:d7-o5-l6-c6-f3:leh2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EvaluateExitSpecBlocks(c.Blocks(), p, 4); err != nil {
			b.Fatal(err)
		}
	}
	reportPerStepN(b, c.PredictionSteps())
}

func BenchmarkEvaluateTaskSpecBlocks(b *testing.B) {
	c := benchColumnarTrace(b, "exprc")
	p := engine.MustBuild("composed:path:d7-o5-l6-c6-f3:leh2:ras32:cttb:d7-o4-l4-c5-f3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EvaluateTaskSpecBlocks(c.Blocks(), p, 4); err != nil {
			b.Fatal(err)
		}
	}
	reportPerStepN(b, c.PredictionSteps())
}

// BenchmarkColumnarEncode measures columnar encoding of an existing
// trace (the cost a cache miss pays once per (workload, cap) pair).
func BenchmarkColumnarEncode(b *testing.B) {
	tr, _ := benchResolvedTrace(b, "exprc")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.FromTrace(tr); err != nil {
			b.Fatal(err)
		}
	}
	reportPerStep(b, tr)
}

// BenchmarkColumnarDecode measures decoding an MSTC stream from memory
// back into columns (the disk-replay ingest path).
func BenchmarkColumnarDecode(b *testing.B) {
	c := benchColumnarTrace(b, "exprc")
	var buf bytes.Buffer
	if err := c.Encode(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.ReadColumnar(bytes.NewReader(raw), c.Graph, 0); err != nil {
			b.Fatal(err)
		}
	}
	reportPerStepN(b, c.PredictionSteps())
}

// BenchmarkTraceResolve measures the one-time sidecar construction cost
// that the fast path amortizes over every replay of a trace.
func BenchmarkTraceResolve(b *testing.B) {
	tr, _ := benchResolvedTrace(b, "exprc")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Rebind the steps to a fresh Trace so each iteration resolves
		// (Resolved memoizes per trace).
		fresh := &trace.Trace{Graph: tr.Graph, Steps: tr.Steps}
		if _, err := fresh.Resolved(); err != nil {
			b.Fatal(err)
		}
	}
	reportPerStep(b, tr)
}

// ---- substrate -----------------------------------------------------------

// BenchmarkFunctionalInterp measures raw interpreter throughput
// (instructions per op).
func BenchmarkFunctionalInterp(b *testing.B) {
	w, err := workload.ByName("compressb")
	if err != nil {
		b.Fatal(err)
	}
	g, err := w.Graph()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	instrs := uint64(0)
	for i := 0; i < b.N; i++ {
		m := functional.NewMachine(g, functional.Config{})
		if _, err := m.Run(functional.Config{MaxSteps: 50000}); err != nil {
			b.Fatal(err)
		}
		instrs += m.Stats().Instrs
	}
	b.ReportMetric(float64(instrs)/float64(b.N), "instrs/op")
}

// BenchmarkTimingSim measures the ring timing model's throughput.
func BenchmarkTimingSim(b *testing.B) {
	w, err := workload.ByName("boolmin")
	if err != nil {
		b.Fatal(err)
	}
	g, err := w.Graph()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := timing.Run(g, nil, timing.Config{MaxSteps: 30000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMSLCompile measures end-to-end compilation of the largest
// workload program (lexer through codegen).
func BenchmarkMSLCompile(b *testing.B) {
	w, err := workload.ByName("exprc")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := msl.Compile(w.Source, msl.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTaskform measures the task-forming pass.
func BenchmarkTaskform(b *testing.B) {
	w, err := workload.ByName("exprc")
	if err != nil {
		b.Fatal(err)
	}
	p, err := w.Program()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := taskform.Partition(p, taskform.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
