// Command mlint runs the static analyzer over built-in workloads, MSL
// source files, or MSA assembly files, together with an optional
// predictor configuration. Error-severity diagnostics set a nonzero exit
// status, so CI can gate on a clean lint.
//
// Usage:
//
//	mlint -w all                          # lint every built-in workload
//	mlint -w exprc -json                  # machine-readable diagnostics
//	mlint -w all -report                  # static predictability report (JSON)
//	mlint prog.msl other.msl              # lint MSL sources
//	mlint -asm prog.s                     # lint MSA assembly
//	mlint -w exprc -dolc 7-5-6-6-3 -cttb 7-4-4-5-3 -ras 32
//	mlint -w exprc -pred composed:path:d7-o5-l6-c6-f3:leh2:ras32:cttb:d7-o4-l4-c5-f3
//	mlint -w minilisp -cttb none          # no CTTB: indirect-coverage warns
//	mlint -w exprc -exit-entries 16384    # check a declared table budget
//	mlint -w exprc -fault all=1e-3,seed=7 # validate a fault-injection spec
//	mlint -w exprc -min warn              # hide info diagnostics
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"multiscalar/internal/asm"
	"multiscalar/internal/core"
	"multiscalar/internal/lint"
	"multiscalar/internal/msl"
	"multiscalar/internal/program"
	"multiscalar/internal/taskform"
	"multiscalar/internal/workload"
)

func main() {
	wname := flag.String("w", "", "lint a built-in workload by name, or 'all': "+strings.Join(workload.Names(), ", "))
	asAsm := flag.Bool("asm", false, "treat file arguments as MSA assembly instead of MSL")
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	reportOut := flag.Bool("report", false, "emit the static predictability report (per-task dataflow facts) as JSON instead of diagnostics")
	predStr := flag.String("pred", "", "predictor spec string (engine grammar); overrides -dolc/-cttb/-ras")
	dolcStr := flag.String("dolc", "7-5-6-6-3", "exit predictor DOLC as D-O-L-C-F, or 'none'")
	cttbStr := flag.String("cttb", "7-4-4-5-3", "CTTB DOLC as D-O-L-C-F, or 'none'")
	rasDepth := flag.Int("ras", core.DefaultRASDepth, "return address stack depth")
	exitEntries := flag.Int("exit-entries", 0, "declared exit-PHT entry count to check (0 = derived)")
	cttbEntries := flag.Int("cttb-entries", 0, "declared CTTB entry count to check (0 = derived)")
	faultStr := flag.String("fault", "", "fault injection spec to validate (e.g. all=1e-3,seed=7; '' = none)")
	minStr := flag.String("min", "info", "minimum severity to print: info | warn | error")
	maxInstr := flag.Int("task-instr", 0, "task former instruction budget (0 = default)")
	flag.Parse()

	code, err := run(*wname, flag.Args(), *asAsm, *jsonOut, *reportOut, *predStr, *dolcStr, *cttbStr, *faultStr,
		*rasDepth, *exitEntries, *cttbEntries, *minStr, *maxInstr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// parseConfig assembles the predictor configuration from flags. The
// fault and predictor specs are passed through raw: validating them is
// exactly the job of the cfg-fault-spec and cfg-pred-spec passes. A
// -pred spec supersedes the hand-rolled -dolc/-cttb/-ras flags — the
// config-layer passes then derive those structures from the spec.
func parseConfig(predStr, dolcStr, cttbStr, faultStr string, ras, exitEntries, cttbEntries int) (*lint.PredictorConfig, error) {
	if predStr != "" {
		return &lint.PredictorConfig{
			PredSpec:    predStr,
			ExitEntries: exitEntries,
			CTTBEntries: cttbEntries,
			FaultSpec:   faultStr,
		}, nil
	}
	cfg := &lint.PredictorConfig{
		RASDepth:    ras,
		ExitEntries: exitEntries,
		CTTBEntries: cttbEntries,
		FaultSpec:   faultStr,
	}
	parse := func(s string) (*core.DOLC, error) {
		d, err := core.ParseDOLC(s)
		// Unparseable syntax (zero DOLC back) is a usage error; a parsed
		// but invalid configuration is exactly what the cfg passes report.
		if err != nil && d == (core.DOLC{}) {
			return nil, err
		}
		return &d, nil
	}
	var err error
	if dolcStr != "none" {
		if cfg.ExitDOLC, err = parse(dolcStr); err != nil {
			return nil, err
		}
	}
	if cttbStr != "none" {
		if cfg.CTTB, err = parse(cttbStr); err != nil {
			return nil, err
		}
	}
	return cfg, nil
}

// target is one lint subject: a named program (with its TFG when the
// task former succeeds).
type target struct {
	name string
	prog *program.Program
}

func collectTargets(wname string, files []string, asAsm bool) ([]target, error) {
	var out []target
	switch {
	case wname == "all":
		for _, w := range workload.All() {
			p, err := w.Program()
			if err != nil {
				return nil, err
			}
			out = append(out, target{w.Name, p})
		}
	case wname != "":
		w, err := workload.ByName(wname)
		if err != nil {
			return nil, err
		}
		p, err := w.Program()
		if err != nil {
			return nil, err
		}
		out = append(out, target{w.Name, p})
	}
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var p *program.Program
		if asAsm {
			p, err = asm.Assemble(string(src))
		} else {
			p, err = msl.Compile(string(src), msl.Options{})
		}
		if err != nil {
			return nil, err
		}
		out = append(out, target{path, p})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("nothing to lint (give -w <workload>, -w all, or source files)")
	}
	return out, nil
}

func run(wname string, files []string, asAsm, jsonOut, reportOut bool, predStr, dolcStr, cttbStr, faultStr string,
	ras, exitEntries, cttbEntries int, minStr string, maxInstr int) (int, error) {
	min, err := lint.ParseSeverity(minStr)
	if err != nil {
		return 0, err
	}
	cfg, err := parseConfig(predStr, dolcStr, cttbStr, faultStr, ras, exitEntries, cttbEntries)
	if err != nil {
		return 0, err
	}
	targets, err := collectTargets(wname, files, asAsm)
	if err != nil {
		return 0, err
	}

	if reportOut {
		var rts []lint.ReportTarget
		for _, t := range targets {
			graph, perr := taskform.Partition(t.prog, taskform.Options{MaxInstr: maxInstr})
			if perr != nil {
				return 0, fmt.Errorf("%s: task former failed: %v (the report needs a TFG)", t.name, perr)
			}
			rt, err := lint.BuildReportTarget(t.name, lint.NewContext(t.prog, graph, cfg))
			if err != nil {
				return 0, err
			}
			rts = append(rts, rt)
		}
		if err := lint.WriteReport(os.Stdout, rts); err != nil {
			return 0, err
		}
		return 0, nil
	}

	failed := false
	var jsonTargets []lint.Target
	for _, t := range targets {
		// Partition to the TFG when possible; a program the task former
		// rejects is still linted at the program layer.
		graph, perr := taskform.Partition(t.prog, taskform.Options{MaxInstr: maxInstr})
		rep := lint.Run(lint.NewContext(t.prog, graph, cfg))
		if rep.HasErrors() {
			failed = true
		}
		if jsonOut {
			jsonTargets = append(jsonTargets, lint.Target{Name: t.name, Report: rep})
			continue
		}
		fmt.Printf("%s: %s\n", t.name, rep.Summary())
		if perr != nil {
			fmt.Printf("  (task former failed: %v; TFG passes skipped)\n", perr)
		}
		if err := rep.WriteText(indent{os.Stdout}, min); err != nil {
			return 0, err
		}
	}
	if jsonOut {
		if err := lint.WriteJSON(os.Stdout, jsonTargets); err != nil {
			return 0, err
		}
	}
	if failed {
		return 1, nil
	}
	return 0, nil
}

// indent prefixes each written chunk with two spaces (diagnostics are
// written line-at-a-time).
type indent struct{ w *os.File }

func (i indent) Write(p []byte) (int, error) {
	if _, err := i.w.WriteString("  "); err != nil {
		return 0, err
	}
	return i.w.Write(p)
}
