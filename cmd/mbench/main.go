// Command mbench regenerates the paper's tables and figures.
//
// Usage:
//
//	mbench -exp all                 # every experiment (slow: full traces)
//	mbench -exp fig7                # one experiment
//	mbench -exp table4 -timing 200000
//	mbench -exp fig10 -steps 500000 # truncate traces (quick look)
//	mbench -list                    # list experiment names
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"multiscalar/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment name or 'all'")
	steps := flag.Int("steps", 0, "truncate workload traces to N dynamic tasks (0 = full)")
	timing := flag.Int("timing", 0, "dynamic-task budget per timing run (0 = default 400000)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-24s %s\n", r.Name, r.Brief)
		}
		return
	}

	cfg := experiments.Config{MaxSteps: *steps, TimingSteps: *timing}

	// Static analysis gate: verify every workload TFG and predictor
	// configuration before spending hours of simulation on them.
	if err := experiments.Preflight(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "mbench:", err)
		os.Exit(1)
	}

	run := func(r experiments.Runner) {
		start := time.Now()
		if err := r.Run(os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "mbench: %s: %v\n", r.Name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %v]\n\n", r.Name, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, r := range experiments.All() {
			run(r)
		}
		return
	}
	r, err := experiments.ByName(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbench:", err)
		os.Exit(1)
	}
	run(r)
}
