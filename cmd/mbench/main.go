// Command mbench regenerates the paper's tables and figures, resiliently:
// one experiment's failure (error, panic, or hang) is isolated and the
// batch continues; multi-experiment runs journal their progress so a
// killed run resumes where it stopped; SIGINT flushes the in-flight
// experiment's partial tables before exiting.
//
// Usage:
//
//	mbench -exp all                 # every experiment (slow: full traces)
//	mbench -exp fig7                # one experiment
//	mbench -exp table4 -timing 200000
//	mbench -exp fig10 -steps 500000 # truncate traces (quick look)
//	mbench -exp all -workers 8      # shard evaluation grids over 8 workers
//	                                # (output is byte-identical at any count)
//	mbench -exp all -timeout 30m    # per-experiment watchdog
//	mbench -exp all -journal run.j  # custom resume journal path
//	mbench -exp all -fresh          # ignore (and restart) the journal
//	mbench -list                    # list experiment names
//
// Observability (internal/obs) is opt-in and off the results path —
// experiment output is byte-identical with it on or off:
//
//	mbench -exp fig7 -http localhost:6060       # pprof + expvar + /metricz
//	mbench -exp all -metrics-out metrics.json   # JSON metrics snapshot on exit
//	mbench -exp all -trace-out trace.json       # Chrome trace-event file
//	                                            # (open in Perfetto / chrome://tracing)
//
// Multi-experiment batches additionally report live progress (done/total
// + ETA) on stderr. The -metrics-out and -trace-out files are flushed
// exactly once on every exit path; a SIGINT mid-batch flushes whatever
// was recorded by then (the trace file is a shorter but valid JSON
// array).
//
// A multi-experiment run appends each completed experiment to the resume
// journal (default mbench.journal). If the process is killed, rerunning
// the same command skips the completed experiments; a fully successful
// run removes the journal. Exit status is 0 only when every selected
// experiment succeeded.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"multiscalar/internal/experiments"
	"multiscalar/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment name or 'all'")
	steps := flag.Int("steps", 0, "truncate workload traces to N dynamic tasks (0 = full)")
	timing := flag.Int("timing", 0, "dynamic-task budget per timing run (0 = default 400000)")
	workers := flag.Int("workers", 0, "evaluation-grid worker pool size (0 = GOMAXPROCS); output is identical at any count")
	timeout := flag.Duration("timeout", 0, "per-experiment watchdog timeout (0 = none)")
	journalPath := flag.String("journal", "mbench.journal", "resume journal path for multi-experiment runs ('' disables)")
	fresh := flag.Bool("fresh", false, "ignore an existing resume journal and start over")
	list := flag.Bool("list", false, "list experiments and exit")
	httpAddr := flag.String("http", "", "serve pprof/expvar//metricz on this address (e.g. localhost:6060; '' = off)")
	metricsOut := flag.String("metrics-out", "", "write a JSON metrics snapshot to this file on exit ('' = off)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file here on exit ('' = off)")
	flag.Parse()

	outputs, err := obs.CLISetup("mbench", *httpAddr, *metricsOut, *traceOut, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbench:", err)
		os.Exit(1)
	}

	// With observability on, report the in-flight evaluation (steps,
	// rate, ETA) every few seconds — the run-level complement to the
	// per-experiment done/total progress line.
	stopRuns := make(chan struct{})
	if obs.On() {
		go watchRuns(stopRuns)
	}

	code := 0
	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-24s %s\n", r.Name, r.Brief)
		}
	} else {
		code = run(*exp, *steps, *timing, *workers, *timeout, *journalPath, *fresh)
	}

	close(stopRuns)

	// The single authoritative flush: -list, error returns, interrupts,
	// and normal completion all pass through here, and Outputs.Flush is
	// idempotent in case an exit path inside run already flushed.
	if err := outputs.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "mbench:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

func run(exp string, steps, timing, workers int, timeout time.Duration, journalPath string, fresh bool) int {
	cfg := experiments.Config{MaxSteps: steps, TimingSteps: timing, Workers: workers}

	// Static analysis gate: verify every workload TFG and predictor
	// configuration before spending hours of simulation on them.
	if err := experiments.Preflight(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "mbench:", err)
		return 1
	}

	var runners []experiments.Runner
	if exp == "all" {
		runners = experiments.All()
	} else {
		r, err := experiments.ByName(exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mbench:", err)
			return 1
		}
		runners = []experiments.Runner{r}
	}

	opts := experiments.RunOptions{Timeout: timeout}
	if len(runners) > 1 {
		// Live batch progress (done/total + ETA) on stderr: a side
		// channel, so stdout stays byte-identical with or without it.
		opts.Progress = obs.NewProgress(os.Stderr, "mbench", len(runners))
	}

	// The resume journal only makes sense across a batch; a single
	// experiment always reruns.
	if len(runners) > 1 && journalPath != "" {
		if fresh {
			if err := os.Remove(journalPath); err != nil && !os.IsNotExist(err) {
				fmt.Fprintln(os.Stderr, "mbench:", err)
				return 1
			}
		}
		j, err := experiments.OpenJournal(journalPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mbench:", err)
			return 1
		}
		if j.Len() > 0 {
			fmt.Fprintf(os.Stderr, "mbench: resuming from %s (%d experiments already done; -fresh restarts)\n",
				journalPath, j.Len())
		}
		opts.Journal = j
	}

	// SIGINT/SIGTERM close the interrupt channel: the in-flight
	// experiment's partial tables are flushed, the summary still prints,
	// and the journal keeps what completed. RunResilient returns on the
	// same channel, so control falls through to main's exactly-once
	// Flush — the -metrics-out snapshot and -trace-out buffer (a
	// truncated-but-valid JSON array) survive an interrupt too.
	intr := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "mbench: interrupt — flushing partial results")
		signal.Stop(sigs)
		close(intr)
	}()
	opts.Interrupt = intr

	outcomes := experiments.RunResilient(os.Stdout, cfg, runners, opts)
	failed := experiments.Summarize(os.Stdout, outcomes)
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "mbench: %d of %d experiments failed\n", failed, len(outcomes))
		return 1
	}
	if opts.Journal != nil {
		if err := opts.Journal.Remove(); err != nil {
			fmt.Fprintln(os.Stderr, "mbench:", err)
			return 1
		}
	}
	return 0
}

// watchRuns prints a live line for the in-flight run-registry entry
// every few seconds until stop closes. Quiet when nothing is active, so
// short batches produce no extra output.
func watchRuns(stop <-chan struct{}) {
	tick := time.NewTicker(5 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			active := obs.Runs().Active()
			if len(active) == 0 {
				continue
			}
			a := active[0]
			extra := ""
			if len(active) > 1 {
				extra = fmt.Sprintf(" (+%d more)", len(active)-1)
			}
			if a.Total > 0 {
				fmt.Fprintf(os.Stderr, "mbench: run %s/%s %d/%d steps (%.0f%%, %.0f steps/s, eta %.0fs)%s\n",
					a.Workload, a.Mode, a.Steps, a.Total,
					100*float64(a.Steps)/float64(a.Total), a.StepsPerSecond, a.ETASeconds, extra)
			} else {
				fmt.Fprintf(os.Stderr, "mbench: run %s/%s %d steps (%.0f steps/s)%s\n",
					a.Workload, a.Mode, a.Steps, a.StepsPerSecond, extra)
			}
		}
	}
}
