// Command mslc compiles MSL source to MSA and inspects the result:
// assembly listing, task flow graph, or execution.
//
// Usage:
//
//	mslc prog.msl                 # compile, report sizes
//	mslc -dump asm prog.msl       # assembly listing
//	mslc -dump tfg prog.msl       # task flow graph
//	mslc -run prog.msl            # compile, partition, execute
package main

import (
	"flag"
	"fmt"
	"os"

	"multiscalar/internal/asm"
	"multiscalar/internal/msl"
	"multiscalar/internal/sim/functional"
	"multiscalar/internal/taskform"
)

func main() {
	dump := flag.String("dump", "", "what to print: asm | tfg")
	runIt := flag.Bool("run", false, "execute the program after compiling")
	maxInstr := flag.Int("task-instr", 0, "task former instruction budget (0 = default)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mslc [-dump asm|tfg] [-run] file.msl")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *dump, *runIt, *maxInstr); err != nil {
		fmt.Fprintln(os.Stderr, "mslc:", err)
		os.Exit(1)
	}
}

func run(path, dump string, runIt bool, maxInstr int) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	prog, err := msl.Compile(string(src), msl.Options{})
	if err != nil {
		return err
	}
	graph, err := taskform.Partition(prog, taskform.Options{MaxInstr: maxInstr})
	if err != nil {
		return err
	}

	switch dump {
	case "":
	case "asm":
		fmt.Print(asm.Disassemble(prog))
	case "tfg":
		for _, addr := range graph.Order {
			t := graph.Tasks[addr]
			name := t.Name
			if name == "" {
				name = "-"
			}
			fmt.Printf("task @%-6d %-20s blocks=%d instrs=%2d exits=%d", addr, name, len(t.Blocks), t.NumInstr, t.NumExits())
			for i, e := range t.Exits {
				fmt.Printf("  [%d]%v", i, e)
			}
			fmt.Println()
		}
	default:
		return fmt.Errorf("unknown -dump kind %q", dump)
	}

	fmt.Printf("%s: %d instructions, %d data words, %d static tasks\n",
		path, len(prog.Code), prog.DataSize, graph.NumTasks())

	if runIt {
		m := functional.NewMachine(graph, functional.Config{})
		tr, err := m.Run(functional.Config{})
		if err != nil {
			return err
		}
		st := m.Stats()
		fmt.Printf("executed %d instructions, %d dynamic tasks (%.1f instr/task), halted=%v\n",
			st.Instrs, tr.Len(), st.InstrsPerTask(), st.Halted)
	}
	return nil
}
