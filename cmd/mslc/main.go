// Command mslc compiles MSL source to MSA and inspects the result:
// assembly listing, task flow graph, lint report, or execution.
//
// Every compile runs the static analyzer (internal/lint) over the
// program and its task flow graph before anything executes;
// error-severity diagnostics abort. -nolint skips the gate.
//
// Usage:
//
//	mslc prog.msl                 # compile, lint, report sizes
//	mslc -dump asm prog.msl       # assembly listing
//	mslc -dump tfg prog.msl       # task flow graph
//	mslc -dump lint prog.msl      # full lint report (including infos)
//	mslc -run prog.msl            # compile, partition, execute
package main

import (
	"flag"
	"fmt"
	"os"

	"multiscalar/internal/asm"
	"multiscalar/internal/lint"
	"multiscalar/internal/msl"
	"multiscalar/internal/sim/functional"
	"multiscalar/internal/taskform"
)

func main() {
	dump := flag.String("dump", "", "what to print: asm | tfg | lint")
	runIt := flag.Bool("run", false, "execute the program after compiling")
	noLint := flag.Bool("nolint", false, "skip the static analyzer gate")
	maxInstr := flag.Int("task-instr", 0, "task former instruction budget (0 = default)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mslc [-dump asm|tfg|lint] [-run] [-nolint] file.msl")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *dump, *runIt, *noLint, *maxInstr); err != nil {
		fmt.Fprintln(os.Stderr, "mslc:", err)
		os.Exit(1)
	}
}

func run(path, dump string, runIt, noLint bool, maxInstr int) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	prog, err := msl.Compile(string(src), msl.Options{})
	if err != nil {
		return err
	}
	graph, err := taskform.Partition(prog, taskform.Options{MaxInstr: maxInstr})
	if err != nil {
		return err
	}

	if !noLint || dump == "lint" {
		rep := lint.Run(lint.NewContext(prog, graph, nil))
		if dump == "lint" {
			if err := rep.WriteText(os.Stdout, lint.Info); err != nil {
				return err
			}
		} else if err := rep.WriteText(os.Stderr, lint.Warn); err != nil {
			return err
		}
		if !noLint && rep.HasErrors() {
			return fmt.Errorf("%s: lint found %d errors (use -nolint to bypass)", path, rep.Count(lint.Error))
		}
	}

	switch dump {
	case "", "lint":
	case "asm":
		fmt.Print(asm.Disassemble(prog))
	case "tfg":
		for _, addr := range graph.Order {
			t := graph.Tasks[addr]
			name := t.Name
			if name == "" {
				name = "-"
			}
			fmt.Printf("task @%-6d %-20s blocks=%d instrs=%2d exits=%d", addr, name, len(t.Blocks), t.NumInstr, t.NumExits())
			for i, e := range t.Exits {
				fmt.Printf("  [%d]%v", i, e)
			}
			fmt.Println()
		}
	default:
		return fmt.Errorf("unknown -dump kind %q", dump)
	}

	fmt.Printf("%s: %d instructions, %d data words, %d static tasks\n",
		path, len(prog.Code), prog.DataSize, graph.NumTasks())

	if runIt {
		m := functional.NewMachine(graph, functional.Config{})
		tr, err := m.Run(functional.Config{})
		if err != nil {
			return err
		}
		st := m.Stats()
		fmt.Printf("executed %d instructions, %d dynamic tasks (%.1f instr/task), halted=%v\n",
			st.Instrs, tr.Len(), st.InstrsPerTask(), st.Halted)
	}
	return nil
}
