// Command mserve is the prediction-as-a-service daemon: it serves the
// evaluation engine over HTTP/JSON with admission control, per-request
// deadlines, panic isolation, single-flight result caching, and graceful
// drain on SIGINT/SIGTERM. See README.md for the API and DESIGN.md §12
// for the serving architecture.
//
// With -selftest it instead runs the built-in deterministic load test
// against an in-process server and exits non-zero if any robustness
// invariant is violated.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"multiscalar/internal/mserve"
	"multiscalar/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr     = flag.String("addr", "localhost:8344", "listen address (host:port; :0 picks a free port)")
		addrFile = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts)")
		workers  = flag.Int("workers", 0, "evaluation pool workers (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 0, "queued runs beyond the workers before shedding (0 = 4x workers)")
		runTO    = flag.Duration("run-timeout", 0, "per-run watchdog budget (0 = 5m, negative disables)")
		reqTO    = flag.Duration("request-timeout", 0, "default per-request deadline (0 = 30s)")
		maxTO    = flag.Duration("max-timeout", 0, "upper clamp on client-requested deadlines (0 = 2m)")
		drainTO  = flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on SIGINT/SIGTERM")
		maxBody  = flag.Int64("max-body", 0, "request body cap in bytes (0 = 64KiB)")
		cacheMax = flag.Int("cache-max", 0, "result cache capacity in entries (0 = 4096)")
		progTick = flag.Duration("progress-interval", 0, "SSE progress event period on /progress (0 = 250ms)")
		sampTick = flag.Duration("sample-interval", 0, "/statusz time-series sampling period (0 = 1s)")

		metricsOut = flag.String("metrics-out", "", "write a metrics snapshot (JSON) here on exit")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace-event file here on exit")

		selftest = flag.Bool("selftest", false, "run the built-in load test instead of serving")
		clients  = flag.Int("clients", 0, "selftest: concurrent clients (0 = 12)")
		requests = flag.Int("requests", 0, "selftest: requests per client (0 = 30)")
		steps    = flag.Int("steps", 0, "selftest: trace truncation per cell (0 = 4000)")
		seed     = flag.Int64("seed", 0, "selftest: base RNG seed (0 = 1)")
		burst    = flag.Int("burst", 0, "selftest: overload burst as a multiple of capacity (0 = 8)")
	)
	flag.Parse()

	// A daemon's metrics are operationally load-bearing: always collect.
	obs.SetEnabled(true)
	outputs, err := obs.CLISetup("mserve", "", *metricsOut, *traceOut, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mserve: %v\n", err)
		return 1
	}
	defer outputs.Flush()

	if *selftest {
		err := mserve.SelfTest(os.Stdout, mserve.SelfTestConfig{
			Clients: *clients, Requests: *requests,
			Workers: *workers, Queue: *queue,
			Steps: *steps, Seed: *seed, BurstFactor: *burst,
		})
		if ferr := outputs.Flush(); err == nil && ferr != nil {
			err = ferr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mserve: %v\n", err)
			return 1
		}
		return 0
	}

	srv := mserve.New(mserve.Config{
		Workers: *workers, Queue: *queue,
		MaxBody:        *maxBody,
		DefaultTimeout: *reqTO, MaxTimeout: *maxTO, RunTimeout: *runTO,
		CacheCap:         *cacheMax,
		ProgressInterval: *progTick, SampleInterval: *sampTick,
	})
	bound, err := srv.Start(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mserve: %v\n", err)
		return 1
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound.String()+"\n"), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mserve: writing -addr-file: %v\n", err)
			return 1
		}
	}
	fmt.Fprintf(os.Stderr, "mserve: serving on http://%s/ (POST /eval; /progress /statusz /healthz /readyz /metricz /debug/pprof)\n", bound)

	// First signal drains gracefully; a second forces exit (still
	// flushing obs outputs — Flush is a sync.Once, so the racing deferred
	// flush and this one cannot double-write).
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	sig := <-sigs
	fmt.Fprintf(os.Stderr, "mserve: %v — draining (budget %v; signal again to force exit)\n", sig, *drainTO)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "mserve: forced exit")
		outputs.Flush()
		os.Exit(1)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "mserve: drain: %v\n", err)
		outputs.Flush()
		return 1
	}
	if err := outputs.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "mserve: %v\n", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "mserve: drained cleanly")
	return 0
}
