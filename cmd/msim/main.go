// Command msim runs one workload under one predictor spec and reports
// prediction statistics (and optionally ring-model timing). The -pred
// spec grammar is the engine's (internal/engine): exit-only specs replay
// exit prediction, cttb: specs replay indirect-target prediction,
// composed: specs replay full task prediction, and "perfect" drives the
// timing model with oracle prediction.
//
// Usage:
//
//	msim -w exprc                                     # standard composed predictor
//	msim -w minilisp -pred path:d5-o4-l6-c6-f2:le     # exit-only replay
//	msim -w compressb -pred cttb:d7-o5-l6-c6-f3       # CTTB target replay
//	msim -w calcsheet -timing                         # ring-model IPC
//	msim -w calcsheet -pred perfect -timing           # oracle timing bound
//	msim -w exprc -steps 200000                       # truncate the run
//	msim -w exprc -fault all=1e-3,seed=7              # seeded fault injection
//	msim -w exprc -pred composed:path:d7-o5-l6-c6-f3:leh2:ras32:cttb:d7-o4-l4-c5-f3:spec:rlat8 -timing
//	                                                  # speculative update with checkpoint repair
//	msim -w exprc -http localhost:6060                # pprof + expvar + /metricz
//	msim -w exprc -metrics-out m.json -trace-out t.json
//
// The observability flags (internal/obs) are opt-in and record off the
// results path: printed statistics are identical with them on or off.
// The trace file is Chrome trace-event JSON (open in Perfetto).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"multiscalar/internal/engine"
	"multiscalar/internal/isa"
	"multiscalar/internal/lint"
	"multiscalar/internal/obs"
	"multiscalar/internal/workload"
)

// stdSpec is the canonical spec of the paper's standard composed task
// predictor: depth-7 path-based exit prediction, a default-depth RAS,
// and the small CTTB for indirect exits.
const stdSpec = "composed:path:d7-o5-l6-c6-f3:leh2:ras32:cttb:d7-o4-l4-c5-f3"

func main() {
	wname := flag.String("w", "exprc", "workload: "+strings.Join(workload.Names(), ", "))
	pred := flag.String("pred", stdSpec, "predictor spec (engine grammar, e.g. path:d7-o5-l6-c6-f3:leh2 or composed:...)")
	steps := flag.Int("steps", 0, "dynamic task budget (0 = run to halt)")
	doTiming := flag.Bool("timing", false, "also run the ring timing model")
	faultStr := flag.String("fault", "", "fault injection spec (e.g. all=1e-3 or ctr=1e-3,ras=1e-2,seed=7; '' = off)")
	httpAddr := flag.String("http", "", "serve pprof/expvar//metricz on this address (e.g. localhost:6060; '' = off)")
	metricsOut := flag.String("metrics-out", "", "write a JSON metrics snapshot to this file on exit ('' = off)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file here on exit ('' = off)")
	flag.Parse()

	outputs, err := obs.CLISetup("msim", *httpAddr, *metricsOut, *traceOut, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "msim:", err)
		os.Exit(1)
	}

	code := 0
	if err := run(*wname, *pred, *faultStr, *steps, *doTiming); err != nil {
		fmt.Fprintln(os.Stderr, "msim:", err)
		code = 1
	}
	// Exactly-once flush on success and error paths alike.
	if err := outputs.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "msim:", err)
		code = 1
	}
	os.Exit(code)
}

func run(wname, predStr, faultStr string, steps int, doTiming bool) error {
	w, err := workload.ByName(wname)
	if err != nil {
		return err
	}
	sp, err := engine.Parse(predStr)
	if err != nil {
		return err
	}

	// Static analysis gate: lint the workload's TFG together with the
	// exact predictor spec before a single task executes.
	g, err := w.Graph()
	if err != nil {
		return err
	}
	rep := lint.Run(lint.NewContext(g.Prog, g,
		&lint.PredictorConfig{PredSpec: predStr, FaultSpec: faultStr}))
	if err := rep.WriteText(os.Stderr, lint.Warn); err != nil {
		return err
	}
	if rep.HasErrors() {
		return fmt.Errorf("lint found %d errors in %s under this configuration", rep.Count(lint.Error), wname)
	}

	if sp.Class() == engine.ClassPerfect && !doTiming {
		return fmt.Errorf("spec %q is the perfect predictor; it is only meaningful with -timing", predStr)
	}

	if sp.Class() != engine.ClassPerfect {
		c, err := workload.CachedColumnar(w.Name, steps)
		if err != nil {
			return err
		}
		fmt.Printf("workload %s (%s analog): %d dynamic tasks, %d distinct\n",
			w.Name, w.Analog, c.Len(), c.DistinctTasks())

		res := engine.Do(engine.Run{Workload: w.Name, Spec: predStr, Fault: faultStr, MaxSteps: steps})
		if res.Err != nil {
			return res.Err
		}
		fmt.Printf("predictor %s\n", sp)
		switch sp.Class() {
		case engine.ClassExit:
			fmt.Printf("  exit miss rate     %6.2f%%  (%d / %d)\n",
				100*res.Exit.MissRate(), res.Exit.Misses, res.Exit.Steps)
			if sp.SpecUpdate() {
				fmt.Printf("  rollbacks          %d  (%d speculative frames repaired)\n",
					res.Exit.Rollbacks, res.Exit.RepairFrames)
			}
		case engine.ClassTarget:
			fmt.Printf("  target miss rate   %6.2f%%  (%d / %d indirect exits)\n",
				100*res.Target.MissRate(), res.Target.Misses, res.Target.Steps)
		case engine.ClassTask:
			fmt.Printf("  task miss rate     %6.2f%%  (%d / %d)\n",
				100*res.Task.MissRate(), res.Task.Misses, res.Task.Steps)
			if sp.HasExit() {
				fmt.Printf("  exit miss rate     %6.2f%%\n", 100*res.Task.ExitMissRate())
			}
			for _, k := range []isa.ControlKind{isa.KindBranch, isa.KindCall, isa.KindReturn,
				isa.KindIndirectBranch, isa.KindIndirectCall} {
				km := res.Task.ByKind[k]
				if km.Steps == 0 {
					continue
				}
				fmt.Printf("  %-18s %6.2f%%  (%d / %d)\n", k.String()+" misses",
					100*float64(km.Misses)/float64(km.Steps), km.Misses, km.Steps)
			}
			if sp.SpecUpdate() {
				fmt.Printf("  rollbacks          %d  (%d speculative frames repaired, %d with RAS damage)\n",
					res.Task.Rollbacks, res.Task.RepairFrames, res.Task.RASDamage)
			}
			if res.Faulted {
				fmt.Printf("  faults injected    %s\n", res.Injection)
			}
		}
	}

	if doTiming {
		res := engine.Do(engine.Run{Workload: w.Name, Spec: predStr, Fault: faultStr,
			Mode: engine.ModeTiming, TimingSteps: steps})
		if res.Err != nil {
			return res.Err
		}
		fmt.Printf("timing (4 units, 2-way): IPC %.2f over %d cycles, %d tasks, task miss %.2f%%\n",
			res.Timing.IPC(), res.Timing.Cycles, res.Timing.Tasks, 100*res.Timing.TaskMissRate())
		if sp.SpecUpdate() {
			fmt.Printf("  predictor repairs: %d rollbacks, %d dispatch cycles stalled\n",
				res.Timing.Rollbacks, res.Timing.RepairCycles)
		}
	}
	return nil
}
