// Command msim runs one workload under one task-predictor configuration
// and reports prediction statistics (and optionally ring-model timing).
//
// Usage:
//
//	msim -w exprc                                # standard predictor
//	msim -w minilisp -dolc 5-4-6-6-2 -automaton LE
//	msim -w compressb -predictor cttb-only
//	msim -w calcsheet -timing                    # ring-model IPC
//	msim -w exprc -steps 200000                  # truncate the run
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"multiscalar/internal/core"
	"multiscalar/internal/isa"
	"multiscalar/internal/sim/timing"
	"multiscalar/internal/trace"
	"multiscalar/internal/workload"
)

func main() {
	wname := flag.String("w", "exprc", "workload: "+strings.Join(workload.Names(), ", "))
	dolcStr := flag.String("dolc", "7-5-6-6-3", "exit predictor DOLC as D-O-L-C-F")
	automaton := flag.String("automaton", "LEH-2bit", "prediction automaton kind")
	predictor := flag.String("predictor", "header", "predictor style: header | cttb-only")
	cttbStr := flag.String("cttb", "7-4-4-5-3", "CTTB DOLC as D-O-L-C-F")
	rasDepth := flag.Int("ras", core.DefaultRASDepth, "return address stack depth")
	steps := flag.Int("steps", 0, "dynamic task budget (0 = run to halt)")
	doTiming := flag.Bool("timing", false, "also run the ring timing model")
	flag.Parse()

	if err := run(*wname, *dolcStr, *automaton, *predictor, *cttbStr, *rasDepth, *steps, *doTiming); err != nil {
		fmt.Fprintln(os.Stderr, "msim:", err)
		os.Exit(1)
	}
}

// parseDOLC parses "D-O-L-C-F".
func parseDOLC(s string) (core.DOLC, error) {
	parts := strings.Split(s, "-")
	if len(parts) != 5 {
		return core.DOLC{}, fmt.Errorf("bad DOLC %q (want D-O-L-C-F)", s)
	}
	var v [5]int
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil {
			return core.DOLC{}, fmt.Errorf("bad DOLC %q: %v", s, err)
		}
		v[i] = n
	}
	d := core.DOLC{Depth: v[0], Older: v[1], Last: v[2], Current: v[3], Folds: v[4]}
	return d, d.Validate()
}

func buildPredictor(style string, dolc, cttbDOLC core.DOLC, kind core.AutomatonKind, rasDepth int) (core.TaskPredictor, error) {
	switch style {
	case "header":
		exit, err := core.NewPathExit(dolc, kind, core.PathExitOptions{SkipSingleExit: true})
		if err != nil {
			return nil, err
		}
		cttb, err := core.NewCTTB(cttbDOLC)
		if err != nil {
			return nil, err
		}
		return core.NewHeaderPredictor("", exit, core.NewRAS(rasDepth), cttb), nil
	case "cttb-only":
		cttb, err := core.NewCTTB(dolc)
		if err != nil {
			return nil, err
		}
		return core.NewCTTBOnly(cttb), nil
	default:
		return nil, fmt.Errorf("unknown predictor style %q", style)
	}
}

func run(wname, dolcStr, automaton, style, cttbStr string, rasDepth, steps int, doTiming bool) error {
	w, err := workload.ByName(wname)
	if err != nil {
		return err
	}
	dolc, err := parseDOLC(dolcStr)
	if err != nil {
		return err
	}
	cttbDOLC, err := parseDOLC(cttbStr)
	if err != nil {
		return err
	}
	kind, err := core.AutomatonKindByName(automaton)
	if err != nil {
		return err
	}
	pred, err := buildPredictor(style, dolc, cttbDOLC, kind, rasDepth)
	if err != nil {
		return err
	}

	var tr *trace.Trace
	if steps > 0 {
		tr, err = w.TraceN(steps)
	} else {
		tr, _, err = w.Trace()
	}
	if err != nil {
		return err
	}

	fmt.Printf("workload %s (%s analog): %d dynamic tasks, %d distinct\n",
		w.Name, w.Analog, tr.Len(), tr.DistinctTasks())

	res := core.EvaluateTask(tr, pred)
	fmt.Printf("predictor %s\n", pred.Name())
	fmt.Printf("  task miss rate     %6.2f%%  (%d / %d)\n", 100*res.MissRate(), res.Misses, res.Steps)
	if style == "header" {
		fmt.Printf("  exit miss rate     %6.2f%%\n", 100*res.ExitMissRate())
	}
	for _, k := range []isa.ControlKind{isa.KindBranch, isa.KindCall, isa.KindReturn,
		isa.KindIndirectBranch, isa.KindIndirectCall} {
		km := res.ByKind[k]
		if km.Steps == 0 {
			continue
		}
		fmt.Printf("  %-18s %6.2f%%  (%d / %d)\n", k.String()+" misses",
			100*float64(km.Misses)/float64(km.Steps), km.Misses, km.Steps)
	}

	if doTiming {
		g, err := w.Graph()
		if err != nil {
			return err
		}
		fresh, err := buildPredictor(style, dolc, cttbDOLC, kind, rasDepth)
		if err != nil {
			return err
		}
		tres, err := timing.Run(g, fresh, timing.Config{MaxSteps: steps})
		if err != nil {
			return err
		}
		fmt.Printf("timing (4 units, 2-way): IPC %.2f over %d cycles, %d tasks, task miss %.2f%%\n",
			tres.IPC(), tres.Cycles, tres.Tasks, 100*tres.TaskMissRate())
	}
	return nil
}
