// Command msim runs one workload under one task-predictor configuration
// and reports prediction statistics (and optionally ring-model timing).
//
// Usage:
//
//	msim -w exprc                                # standard predictor
//	msim -w minilisp -dolc 5-4-6-6-2 -automaton LE
//	msim -w compressb -predictor cttb-only
//	msim -w calcsheet -timing                    # ring-model IPC
//	msim -w exprc -steps 200000                  # truncate the run
//	msim -w exprc -fault all=1e-3,seed=7         # seeded fault injection
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"multiscalar/internal/core"
	"multiscalar/internal/fault"
	"multiscalar/internal/isa"
	"multiscalar/internal/lint"
	"multiscalar/internal/sim/timing"
	"multiscalar/internal/trace"
	"multiscalar/internal/workload"
)

func main() {
	wname := flag.String("w", "exprc", "workload: "+strings.Join(workload.Names(), ", "))
	dolcStr := flag.String("dolc", "7-5-6-6-3", "exit predictor DOLC as D-O-L-C-F")
	automaton := flag.String("automaton", "LEH-2bit", "prediction automaton kind")
	predictor := flag.String("predictor", "header", "predictor style: header | cttb-only")
	cttbStr := flag.String("cttb", "7-4-4-5-3", "CTTB DOLC as D-O-L-C-F")
	rasDepth := flag.Int("ras", core.DefaultRASDepth, "return address stack depth")
	steps := flag.Int("steps", 0, "dynamic task budget (0 = run to halt)")
	doTiming := flag.Bool("timing", false, "also run the ring timing model")
	faultStr := flag.String("fault", "", "fault injection spec (e.g. all=1e-3 or ctr=1e-3,ras=1e-2,seed=7; '' = off)")
	flag.Parse()

	if err := run(*wname, *dolcStr, *automaton, *predictor, *cttbStr, *faultStr, *rasDepth, *steps, *doTiming); err != nil {
		fmt.Fprintln(os.Stderr, "msim:", err)
		os.Exit(1)
	}
}

func buildPredictor(style string, dolc, cttbDOLC core.DOLC, kind core.AutomatonKind, rasDepth int) (core.TaskPredictor, error) {
	switch style {
	case "header":
		exit, err := core.NewPathExit(dolc, kind, core.PathExitOptions{SkipSingleExit: true})
		if err != nil {
			return nil, err
		}
		cttb, err := core.NewCTTB(cttbDOLC)
		if err != nil {
			return nil, err
		}
		return core.NewHeaderPredictor("", exit, core.NewRAS(rasDepth), cttb), nil
	case "cttb-only":
		cttb, err := core.NewCTTB(dolc)
		if err != nil {
			return nil, err
		}
		return core.NewCTTBOnly(cttb), nil
	default:
		return nil, fmt.Errorf("unknown predictor style %q", style)
	}
}

func run(wname, dolcStr, automaton, style, cttbStr, faultStr string, rasDepth, steps int, doTiming bool) error {
	w, err := workload.ByName(wname)
	if err != nil {
		return err
	}
	dolc, err := core.ParseDOLC(dolcStr)
	if err != nil {
		return err
	}
	cttbDOLC, err := core.ParseDOLC(cttbStr)
	if err != nil {
		return err
	}
	kind, err := core.AutomatonKindByName(automaton)
	if err != nil {
		return err
	}
	spec, err := fault.ParseSpec(faultStr)
	if err != nil {
		return err
	}
	pred, err := buildPredictor(style, dolc, cttbDOLC, kind, rasDepth)
	if err != nil {
		return err
	}

	// Static analysis gate: lint the workload's TFG together with the
	// exact predictor configuration before a single task executes.
	g, err := w.Graph()
	if err != nil {
		return err
	}
	lcfg := &lint.PredictorConfig{RASDepth: rasDepth, FaultSpec: faultStr}
	switch style {
	case "header":
		lcfg.ExitDOLC, lcfg.CTTB = &dolc, &cttbDOLC
	case "cttb-only":
		lcfg.CTTB = &dolc
	}
	rep := lint.Run(lint.NewContext(g.Prog, g, lcfg))
	if err := rep.WriteText(os.Stderr, lint.Warn); err != nil {
		return err
	}
	if rep.HasErrors() {
		return fmt.Errorf("lint found %d errors in %s under this configuration", rep.Count(lint.Error), wname)
	}

	var tr *trace.Trace
	if steps > 0 {
		tr, err = w.TraceN(steps)
	} else {
		tr, _, err = w.Trace()
	}
	if err != nil {
		return err
	}

	fmt.Printf("workload %s (%s analog): %d dynamic tasks, %d distinct\n",
		w.Name, w.Analog, tr.Len(), tr.DistinctTasks())

	var inj *fault.Injector
	if spec.Enabled() {
		if inj, err = fault.New(spec, pred); err != nil {
			return err
		}
		pred = inj
	}

	res := core.EvaluateTask(tr, pred)
	fmt.Printf("predictor %s\n", pred.Name())
	fmt.Printf("  task miss rate     %6.2f%%  (%d / %d)\n", 100*res.MissRate(), res.Misses, res.Steps)
	if style == "header" {
		fmt.Printf("  exit miss rate     %6.2f%%\n", 100*res.ExitMissRate())
	}
	for _, k := range []isa.ControlKind{isa.KindBranch, isa.KindCall, isa.KindReturn,
		isa.KindIndirectBranch, isa.KindIndirectCall} {
		km := res.ByKind[k]
		if km.Steps == 0 {
			continue
		}
		fmt.Printf("  %-18s %6.2f%%  (%d / %d)\n", k.String()+" misses",
			100*float64(km.Misses)/float64(km.Steps), km.Misses, km.Steps)
	}
	if inj != nil {
		fmt.Printf("  faults injected    %s\n", inj.Stats())
	}

	if doTiming {
		fresh, err := buildPredictor(style, dolc, cttbDOLC, kind, rasDepth)
		if err != nil {
			return err
		}
		if spec.Enabled() {
			if fresh, err = fault.New(spec, fresh); err != nil {
				return err
			}
		}
		tres, err := timing.Run(g, fresh, timing.Config{MaxSteps: steps})
		if err != nil {
			return err
		}
		fmt.Printf("timing (4 units, 2-way): IPC %.2f over %d cycles, %d tasks, task miss %.2f%%\n",
			tres.IPC(), tres.Cycles, tres.Tasks, 100*tres.TaskMissRate())
	}
	return nil
}
