// Command mtrace records, inspects, converts, and replays dynamic task
// traces. Recording a trace once lets predictor sweeps run without
// re-executing the workload; the columnar format ("MSTC") additionally
// replays block-wise in bounded memory.
//
// Usage:
//
//	mtrace record  -w exprc [-steps N] [-columnar] FILE   # execute & save
//	mtrace info    -w exprc FILE                          # validate & summarize (either format)
//	mtrace stat    -w exprc FILE                          # columnar layout statistics
//	mtrace convert -w exprc IN OUT                        # legacy ⇄ columnar (sniffs input)
//	mtrace replay  -w exprc FILE                          # predictor sweep (either format)
//	mtrace stream  -w exprc [-steps N] [-repeat K] [-max-heap-mb M]
//	                                                      # generate→replay pipeline, nothing materialized
//	mtrace stream  -w exprc -steps N -progress 256        # live progress lines on stderr
//	mtrace stream  -w exprc -metrics-out m.json           # JSON metrics snapshot (peak-heap gauge) on exit
package main

import (
	"bufio"
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"multiscalar/internal/core"
	"multiscalar/internal/engine"
	"multiscalar/internal/obs"
	"multiscalar/internal/sim/functional"
	"multiscalar/internal/tfg"
	"multiscalar/internal/trace"
	"multiscalar/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "record":
		err = cmdRecord(args)
	case "info":
		err = cmdInfo(args)
	case "stat":
		err = cmdStat(args)
	case "convert":
		err = cmdConvert(args)
	case "replay":
		err = cmdReplay(args)
	case "stream":
		err = cmdStream(args)
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "mtrace: unknown subcommand %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mtrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  mtrace record  -w WL [-steps N] [-columnar] FILE
  mtrace info    -w WL FILE
  mtrace stat    -w WL FILE
  mtrace convert -w WL IN OUT
  mtrace replay  -w WL FILE
  mtrace stream  -w WL [-steps N] [-repeat K] [-max-heap-mb M] [-progress N] [-metrics-out FILE]
workloads: `+strings.Join(workload.Names(), ", "))
}

// flagSet builds a subcommand flag set with the shared -w flag.
func flagSet(name string) (*flag.FlagSet, *string) {
	fs := flag.NewFlagSet("mtrace "+name, flag.ExitOnError)
	wname := fs.String("w", "exprc", "workload: "+strings.Join(workload.Names(), ", "))
	return fs, wname
}

func graphFor(wname string) (*tfg.Graph, error) {
	w, err := workload.ByName(wname)
	if err != nil {
		return nil, err
	}
	return w.Graph()
}

func cmdRecord(args []string) error {
	fs, wname := flagSet("record")
	steps := fs.Int("steps", 0, "dynamic task budget (0 = run to halt)")
	columnar := fs.Bool("columnar", false, "write the columnar block format (streamed: the trace is never held in memory)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return errors.New("record needs exactly one output file")
	}
	g, err := graphFor(*wname)
	if err != nil {
		return err
	}
	f, err := os.Create(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)

	if *columnar {
		w, err := trace.NewWriter(bw, g)
		if err != nil {
			return err
		}
		m := functional.NewMachine(g, functional.Config{})
		total := 0
		for {
			chunk := trace.BlockSteps
			if *steps > 0 {
				if rem := *steps - total; rem < chunk {
					chunk = rem
				}
			}
			if chunk <= 0 {
				break
			}
			seg, err := m.Run(functional.Config{MaxSteps: chunk})
			if err != nil {
				return err
			}
			if err := w.Append(seg.Steps); err != nil {
				return err
			}
			total += len(seg.Steps)
			if m.Stats().Halted || len(seg.Steps) == 0 {
				break
			}
		}
		if err := w.Close(); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		fmt.Printf("recorded %d steps (%d instructions) to %s (columnar)\n", total, m.Stats().Instrs, fs.Arg(0))
		return nil
	}

	tr, stats, err := functional.Run(g, functional.Config{MaxSteps: *steps})
	if err != nil {
		return err
	}
	if err := tr.Write(bw); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	fmt.Printf("recorded %d steps (%d instructions) to %s\n", tr.Len(), stats.Instrs, fs.Arg(0))
	return nil
}

// load sniffs the file's magic and decodes either trace format into a
// columnar trace plus, for the legacy format, the original struct trace.
func load(path string, g *tfg.Graph) (*trace.Columnar, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	magic, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, trace.ErrTruncated)
	}
	if isColumnarMagic(magic) {
		return trace.ReadColumnar(br, g, 0)
	}
	tr, err := trace.Read(br, g)
	if err != nil {
		return nil, err
	}
	return trace.FromTrace(tr)
}

// isColumnarMagic reports whether the 4 sniffed bytes are the columnar
// magic ("MSTC" little-endian).
func isColumnarMagic(b []byte) bool {
	return len(b) >= 4 && b[0] == 0x43 && b[1] == 0x54 && b[2] == 0x53 && b[3] == 0x4d
}

func cmdInfo(args []string) error {
	fs, wname := flagSet("info")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return errors.New("info needs exactly one trace file")
	}
	g, err := graphFor(*wname)
	if err != nil {
		return err
	}
	path := fs.Arg(0)
	c, err := load(path, g)
	if err != nil {
		return err
	}
	if err := c.Materialize().Validate(); err != nil {
		return fmt.Errorf("trace does not match %s's TFG: %w", *wname, err)
	}
	fmt.Printf("%s: %d steps, %d prediction events, %d distinct tasks — valid for %s\n",
		path, c.Len(), c.PredictionSteps(), c.DistinctTasks(), *wname)
	hist := c.DynamicExitHistogram()
	fmt.Printf("exits-per-task distribution: %v\n", hist)
	return nil
}

func cmdStat(args []string) error {
	fs, wname := flagSet("stat")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return errors.New("stat needs exactly one trace file")
	}
	g, err := graphFor(*wname)
	if err != nil {
		return err
	}
	path := fs.Arg(0)
	c, err := load(path, g)
	if err != nil {
		return err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	// On-disk size of the columnar framing for this trace (recomputed for
	// legacy inputs so stat always describes the columnar layout).
	var enc bytes.Buffer
	if err := c.Encode(&enc); err != nil {
		return err
	}
	steps := c.Len()
	blocks := (steps + trace.BlockSteps - 1) / trace.BlockSteps
	fmt.Printf("%s: %d steps in %d blocks of %d\n", path, steps, blocks, trace.BlockSteps)
	fmt.Printf("dictionary: %d entries (%d distinct tasks)\n", c.Dict.Len(), c.DistinctTasks())
	fmt.Printf("file: %d bytes (%.3f B/step as stored)\n", fi.Size(), float64(fi.Size())/float64(max(steps, 1)))
	fmt.Printf("columnar encoding: %d bytes on disk (%.3f B/step), %d bytes in memory (%.2f B/step)\n",
		enc.Len(), float64(enc.Len())/float64(max(steps, 1)),
		c.Footprint(), float64(c.Footprint())/float64(max(steps, 1)))
	fmt.Printf("legacy array-of-structs equivalent: %d bytes in memory (%d B/step + resolved sidecar)\n",
		steps*12, 12)
	return nil
}

func cmdConvert(args []string) error {
	fs, wname := flagSet("convert")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return errors.New("convert needs an input and an output file")
	}
	g, err := graphFor(*wname)
	if err != nil {
		return err
	}
	in, out := fs.Arg(0), fs.Arg(1)

	f, err := os.Open(in)
	if err != nil {
		return err
	}
	br := bufio.NewReader(f)
	magic, err := br.Peek(4)
	if err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", in, trace.ErrTruncated)
	}
	toColumnar := !isColumnarMagic(magic)

	o, err := os.Create(out)
	if err != nil {
		f.Close()
		return err
	}
	defer o.Close()
	bw := bufio.NewWriter(o)

	var steps int
	if toColumnar {
		tr, err := trace.Read(br, g)
		f.Close()
		if err != nil {
			return err
		}
		c, err := trace.FromTrace(tr)
		if err != nil {
			return err
		}
		if err := c.Encode(bw); err != nil {
			return err
		}
		steps = c.Len()
	} else {
		c, err := trace.ReadColumnar(br, g, 0)
		f.Close()
		if err != nil {
			return err
		}
		if err := c.Materialize().Write(bw); err != nil {
			return err
		}
		steps = c.Len()
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	dir := "legacy → columnar"
	if !toColumnar {
		dir = "columnar → legacy"
	}
	fmt.Printf("converted %s (%s, %d steps) to %s\n", in, dir, steps, out)
	return nil
}

// sweepPreds is the standard exit-predictor sweep replayed by `replay`
// and `stream`.
func sweepPreds() []core.ExitPredictor {
	return []core.ExitPredictor{
		engine.MustBuildExit("iglobal:d7:leh2"),
		engine.MustBuildExit("iper:d7:leh2"),
		engine.MustBuildExit("ipath:d7:leh2"),
		engine.MustBuildExit("path:d7-o5-l6-c6-f3:leh2"),
	}
}

func cmdReplay(args []string) error {
	fs, wname := flagSet("replay")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return errors.New("replay needs exactly one trace file")
	}
	g, err := graphFor(*wname)
	if err != nil {
		return err
	}
	c, err := load(fs.Arg(0), g)
	if err != nil {
		return err
	}
	for _, p := range sweepPreds() {
		res, err := core.EvaluateExitBlocks(c.Blocks(), p)
		if err != nil {
			return err
		}
		fmt.Printf("%-32s %6.2f%% misses (%d states)\n", res.Name, 100*res.MissRate(), res.States)
	}
	return nil
}

// heapSampler wraps a block source, sampling the Go heap every few
// blocks to observe the replay pipeline's peak footprint.
type heapSampler struct {
	src    trace.BlockSource
	blocks int
	peak   uint64
}

func (h *heapSampler) NextBlock() (*trace.Block, error) {
	if h.blocks%64 == 0 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > h.peak {
			h.peak = ms.HeapAlloc
		}
	}
	h.blocks++
	return h.src.NextBlock()
}

// progressPrinter wraps a block source, printing a live progress line
// every few blocks. All figures come from the run status snapshot (the
// registry owns the clock), so the replay loop itself never reads time.
type progressPrinter struct {
	src    trace.BlockSource
	st     *obs.RunStatus
	every  int
	blocks int
	w      io.Writer
}

func (p *progressPrinter) NextBlock() (*trace.Block, error) {
	b, err := p.src.NextBlock()
	if b != nil {
		p.blocks++
		if p.every > 0 && p.blocks%p.every == 0 {
			snap := p.st.Snapshot()
			if snap.Total > 0 {
				fmt.Fprintf(p.w, "mtrace: %d/%d steps (%.0f%%, %.0f steps/s, eta %.0fs)\n",
					snap.Steps, snap.Total, 100*float64(snap.Steps)/float64(snap.Total),
					snap.StepsPerSecond, snap.ETASeconds)
			} else {
				fmt.Fprintf(p.w, "mtrace: %d steps (%.0f steps/s)\n", snap.Steps, snap.StepsPerSecond)
			}
		}
	}
	return b, err
}

func cmdStream(args []string) error {
	fs, wname := flagSet("stream")
	steps := fs.Int("steps", 0, "dynamic task budget per pass (0 = run to halt)")
	repeat := fs.Int("repeat", 1, "number of back-to-back passes (synthesizes long streams)")
	maxHeapMB := fs.Int("max-heap-mb", 0, "fail if sampled peak heap exceeds this many MiB (0 = no ceiling)")
	predStr := fs.String("pred", "path:d7-o5-l6-c6-f3:leh2", "exit predictor spec to replay")
	progress := fs.Int("progress", 0, "print a progress line to stderr every N blocks (0 = off)")
	metricsOut := fs.String("metrics-out", "", "write a JSON metrics snapshot (incl. peak-heap gauge) to this file on exit ('' = off)")
	httpAddr := fs.String("http", "", "serve pprof/expvar//metricz//runz on this address while streaming ('' = off)")
	fs.Parse(args)
	if fs.NArg() != 0 {
		return errors.New("stream takes no positional arguments")
	}
	outputs, err := obs.CLISetup("mtrace", *httpAddr, *metricsOut, "", os.Stderr)
	if err != nil {
		return err
	}
	runErr := streamRun(*wname, *steps, *repeat, *maxHeapMB, *predStr, *progress)
	if ferr := outputs.Flush(); ferr != nil && runErr == nil {
		runErr = ferr
	}
	return runErr
}

func streamRun(wname string, steps, repeat, maxHeapMB int, predStr string, progress int) error {
	sp, err := engine.Parse(predStr)
	if err != nil {
		return err
	}
	p, err := sp.BuildExit()
	if err != nil {
		return err
	}
	src, err := workload.StreamBlocks(wname, steps, repeat)
	if err != nil {
		return err
	}

	// The run status is the stream's telemetry side channel: the engine
	// wrapper credits steps, the printer and any -http viewer read them.
	st := obs.Runs().Start("stream:"+wname, wname, predStr, "exit")
	if steps > 0 {
		st.SetTotal(int64(steps * repeat))
	}
	st.SetPhase(obs.PhaseRunning)

	sampler := &heapSampler{src: engine.WithProgress(src, st)}
	var outer trace.BlockSource = sampler
	if progress > 0 {
		outer = &progressPrinter{src: sampler, st: st, every: progress, w: os.Stderr}
	}
	res, err := core.EvaluateExitBlocks(outer, p)
	if err != nil {
		st.Fail()
		return err
	}
	st.Finish()
	// One final sample after the run so short streams still report.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > sampler.peak {
		sampler.peak = ms.HeapAlloc
	}
	obs.Default().Gauge("mtrace.stream.peak_heap_bytes").Set(int64(sampler.peak))
	peakMB := float64(sampler.peak) / (1 << 20)
	fmt.Printf("streamed %d prediction steps in %d blocks through %s: %6.2f%% misses (%d states)\n",
		res.Steps, sampler.blocks, res.Name, 100*res.MissRate(), res.States)
	fmt.Printf("peak heap %.1f MiB (in-memory equivalent ≥ %.1f MiB)\n",
		peakMB, float64(res.Steps)*44/(1<<20))
	if maxHeapMB > 0 && peakMB > float64(maxHeapMB) {
		return fmt.Errorf("peak heap %.1f MiB exceeds ceiling %d MiB", peakMB, maxHeapMB)
	}
	return nil
}
