// Command mtrace records, inspects, and replays dynamic task traces.
// Recording a trace once lets predictor sweeps run without re-executing
// the workload.
//
// Usage:
//
//	mtrace -w exprc -record /tmp/exprc.trace          # execute & save
//	mtrace -w exprc -info /tmp/exprc.trace            # validate & summarize
//	mtrace -w exprc -replay /tmp/exprc.trace          # predictor sweep on it
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"multiscalar/internal/core"
	"multiscalar/internal/engine"
	"multiscalar/internal/sim/functional"
	"multiscalar/internal/tfg"
	"multiscalar/internal/trace"
	"multiscalar/internal/workload"
)

func main() {
	wname := flag.String("w", "exprc", "workload: "+strings.Join(workload.Names(), ", "))
	record := flag.String("record", "", "execute the workload and write its trace to this file")
	info := flag.String("info", "", "read a trace file, validate it against the workload's TFG, summarize")
	replay := flag.String("replay", "", "read a trace file and run the standard predictor sweep on it")
	steps := flag.Int("steps", 0, "dynamic task budget when recording (0 = run to halt)")
	flag.Parse()

	if err := run(*wname, *record, *info, *replay, *steps); err != nil {
		fmt.Fprintln(os.Stderr, "mtrace:", err)
		os.Exit(1)
	}
}

func run(wname, record, info, replay string, steps int) error {
	w, err := workload.ByName(wname)
	if err != nil {
		return err
	}
	g, err := w.Graph()
	if err != nil {
		return err
	}

	switch {
	case record != "":
		tr, stats, err := functional.Run(g, functional.Config{MaxSteps: steps})
		if err != nil {
			return err
		}
		f, err := os.Create(record)
		if err != nil {
			return err
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		if err := tr.Write(bw); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		fmt.Printf("recorded %d steps (%d instructions) to %s\n", tr.Len(), stats.Instrs, record)
		return nil

	case info != "":
		tr, err := load(info, g)
		if err != nil {
			return err
		}
		if err := tr.Validate(); err != nil {
			return fmt.Errorf("trace does not match %s's TFG: %w", wname, err)
		}
		fmt.Printf("%s: %d steps, %d prediction events, %d distinct tasks — valid for %s\n",
			info, tr.Len(), tr.PredictionSteps(), tr.DistinctTasks(), wname)
		hist := tr.DynamicExitHistogram()
		fmt.Printf("exits-per-task distribution: %v\n", hist)
		return nil

	case replay != "":
		tr, err := load(replay, g)
		if err != nil {
			return err
		}
		preds := []core.ExitPredictor{
			engine.MustBuildExit("iglobal:d7:leh2"),
			engine.MustBuildExit("iper:d7:leh2"),
			engine.MustBuildExit("ipath:d7:leh2"),
			engine.MustBuildExit("path:d7-o5-l6-c6-f3:leh2"),
		}
		for _, res := range core.EvaluateExitAll(tr, preds) {
			fmt.Printf("%-32s %6.2f%% misses (%d states)\n", res.Name, 100*res.MissRate(), res.States)
		}
		return nil
	}
	return fmt.Errorf("one of -record, -info, -replay is required")
}

func load(path string, g *tfg.Graph) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Read(bufio.NewReader(f), g)
}
