// Command mtask prints task-level statistics for a workload: the data
// behind the paper's Table 2 and Figures 3–4.
//
// Usage:
//
//	mtask                # all workloads
//	mtask -w minilisp    # one workload
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"multiscalar/internal/isa"
	"multiscalar/internal/workload"
)

func main() {
	wname := flag.String("w", "", "workload name (default: all): "+strings.Join(workload.Names(), ", "))
	steps := flag.Int("steps", 0, "dynamic task budget (0 = run to halt)")
	flag.Parse()

	var ws []*workload.Workload
	if *wname == "" {
		ws = workload.All()
	} else {
		w, err := workload.ByName(*wname)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mtask:", err)
			os.Exit(1)
		}
		ws = []*workload.Workload{w}
	}
	for _, w := range ws {
		if err := report(w, *steps); err != nil {
			fmt.Fprintln(os.Stderr, "mtask:", err)
			os.Exit(1)
		}
	}
}

func report(w *workload.Workload, steps int) error {
	g, err := w.Graph()
	if err != nil {
		return err
	}
	var trLen, distinct int
	var dynHist [5]int
	dynKinds := map[isa.ControlKind]int{}
	if steps > 0 {
		tr, err := w.TraceN(steps)
		if err != nil {
			return err
		}
		trLen, distinct, dynHist, dynKinds = tr.Len(), tr.DistinctTasks(), tr.DynamicExitHistogram(), tr.DynamicExitKinds()
	} else {
		tr, st, err := w.Trace()
		if err != nil {
			return err
		}
		trLen, distinct, dynHist, dynKinds = tr.Len(), tr.DistinctTasks(), tr.DynamicExitHistogram(), tr.DynamicExitKinds()
		defer fmt.Printf("  avg task length: %.1f instructions\n\n", st.InstrsPerTask())
	}

	fmt.Printf("%s (%s analog): %q\n", w.Name, w.Analog, w.Description)
	fmt.Printf("  program: %d instructions, %d static tasks\n", len(g.Prog.Code), g.NumTasks())
	fmt.Printf("  dynamic: %d tasks, %d distinct seen\n", trLen, distinct)

	sh := g.StaticExitHistogram()
	fmt.Printf("  exits/task  static:")
	for n, c := range sh {
		fmt.Printf(" %d:%0.1f%%", n, 100*float64(c)/float64(g.NumTasks()))
	}
	fmt.Printf("\n  exits/task dynamic:")
	for n, c := range dynHist {
		fmt.Printf(" %d:%0.1f%%", n, 100*float64(c)/float64(trLen))
	}
	fmt.Println()

	kinds := []isa.ControlKind{isa.KindBranch, isa.KindCall, isa.KindReturn,
		isa.KindIndirectBranch, isa.KindIndirectCall}
	stKinds := g.StaticExitKinds()
	stTotal, dynTotal := 0, 0
	for _, k := range kinds {
		stTotal += stKinds[k]
		dynTotal += dynKinds[k]
	}
	fmt.Printf("  exit kinds  static:")
	for _, k := range kinds {
		fmt.Printf(" %s:%0.1f%%", k, 100*float64(stKinds[k])/float64(stTotal))
	}
	fmt.Printf("\n  exit kinds dynamic:")
	for _, k := range kinds {
		fmt.Printf(" %s:%0.1f%%", k, 100*float64(dynKinds[k])/float64(dynTotal))
	}
	fmt.Println()
	return nil
}
