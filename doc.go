// Package multiscalar is a from-scratch reproduction of "Control Flow
// Speculation in Multiscalar Processors" (Jacobson, Bennett, Sharma,
// Smith; HPCA-3, 1997): inter-task control-flow prediction for the
// Multiscalar execution model, together with every substrate needed to
// evaluate it — a small RISC ISA (MSA), an assembler, a C-like language
// and compiler (MSL), a task-forming compiler pass, functional and timing
// simulators, five benchmark analogs of the paper's SPEC92 suite, and the
// complete experiment matrix (Tables 2–4, Figures 3–12).
//
// Start with README.md for the layout, DESIGN.md for the architecture and
// substitutions, and EXPERIMENTS.md for the measured reproduction of each
// table and figure. The benchmark harness in bench_test.go regenerates
// every result via `go test -bench`.
package multiscalar
