package multiscalar_test

// Differential tests for the resolved-trace fast replay path: every
// Evaluate* result — counts, miss breakdowns, States, ByKind — must be
// identical between the resolved fast path and the unresolved reference
// path, on every workload, and the fast path must not allocate per step.

import (
	"reflect"
	"testing"

	"multiscalar/internal/core"
	"multiscalar/internal/engine"
	"multiscalar/internal/isa"
	"multiscalar/internal/tfg"
	"multiscalar/internal/trace"
	"multiscalar/internal/workload"
)

// equivSteps keeps the five-workload differential sweep in the seconds
// range (the full traces are covered by the workload self-check tests;
// the replay loops are step-position-independent).
const equivSteps = 60000

func equivTrace(tb testing.TB, name string) (*trace.Trace, *trace.Resolved) {
	tb.Helper()
	tr, err := workload.CachedTrace(name, equivSteps)
	if err != nil {
		tb.Fatal(err)
	}
	rt, err := tr.Resolved()
	if err != nil {
		tb.Fatal(err)
	}
	return tr, rt
}

func equivColumnar(tb testing.TB, name string) *trace.Columnar {
	tb.Helper()
	c, err := workload.CachedColumnar(name, equivSteps)
	if err != nil {
		tb.Fatal(err)
	}
	return c
}

var equivExitSpecs = []string{
	"path:d7-o5-l6-c6-f3:leh2",
	"path:d2-o4-l5-c5:vc2rand:seed7",
	"global:d7-c14-i14:leh2",
	"per:d7-h12-t14-i14:leh2",
	"ipath:d7:leh2",
}

var equivTargetSpecs = []string{
	"cttb:d7-o4-l4-c5-f3",
	"icttb:d7",
}

var equivTaskSpecs = []string{
	"composed:path:d7-o5-l6-c6-f3:leh2:ras32:cttb:d7-o4-l4-c5-f3",
	"composed:ipath:d7:leh2:ras32:icttb:d7",
	"composed:path:d7-o5-l6-c6-f3:leh2:noras",
	"cttb:d7-o4-l4-c5-f3",
}

func TestReplayEquivalence(t *testing.T) {
	for _, name := range workload.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			tr, rt := equivTrace(t, name)
			c := equivColumnar(t, name)
			for _, spec := range equivExitSpecs {
				slow := core.EvaluateExitUnresolved(tr, engine.MustBuildExit(spec))
				fast := core.EvaluateExitResolved(rt, engine.MustBuildExit(spec))
				if !reflect.DeepEqual(slow, fast) {
					t.Errorf("exit %s: unresolved %+v != resolved %+v", spec, slow, fast)
				}
				blocks, err := core.EvaluateExitBlocks(c.Blocks(), engine.MustBuildExit(spec))
				if err != nil {
					t.Fatalf("exit %s: block replay: %v", spec, err)
				}
				if !reflect.DeepEqual(slow, blocks) {
					t.Errorf("exit %s: unresolved %+v != blocks %+v", spec, slow, blocks)
				}
			}
			for _, spec := range equivTargetSpecs {
				slow := core.EvaluateIndirectUnresolved(tr, engine.MustBuildTarget(spec))
				fast := core.EvaluateIndirectResolved(rt, engine.MustBuildTarget(spec))
				if !reflect.DeepEqual(slow, fast) {
					t.Errorf("target %s: unresolved %+v != resolved %+v", spec, slow, fast)
				}
				blocks, err := core.EvaluateIndirectBlocks(c.Blocks(), engine.MustBuildTarget(spec))
				if err != nil {
					t.Fatalf("target %s: block replay: %v", spec, err)
				}
				if !reflect.DeepEqual(slow, blocks) {
					t.Errorf("target %s: unresolved %+v != blocks %+v", spec, slow, blocks)
				}
			}
			for _, spec := range equivTaskSpecs {
				slow := core.EvaluateTaskUnresolved(tr, engine.MustBuild(spec))
				fast := core.EvaluateTaskResolved(rt, engine.MustBuild(spec))
				if !reflect.DeepEqual(slow, fast) {
					t.Errorf("task %s: unresolved %+v != resolved %+v", spec, slow, fast)
				}
				blocks, err := core.EvaluateTaskBlocks(c.Blocks(), engine.MustBuild(spec))
				if err != nil {
					t.Fatalf("task %s: block replay: %v", spec, err)
				}
				if !reflect.DeepEqual(slow, blocks) {
					t.Errorf("task %s: unresolved %+v != blocks %+v", spec, slow, blocks)
				}
			}
			// The public entry points take the fast path on a resolvable
			// trace and must agree with the reference too.
			spec := equivTaskSpecs[0]
			auto := core.EvaluateTask(tr, engine.MustBuild(spec))
			slow := core.EvaluateTaskUnresolved(tr, engine.MustBuild(spec))
			if !reflect.DeepEqual(auto, slow) {
				t.Errorf("EvaluateTask %s: %+v != unresolved %+v", spec, auto, slow)
			}
			// A generated-on-the-fly stream must replay identically to the
			// cached columns (same steps, same blocks, never materialized).
			src, err := workload.StreamBlocks(name, equivSteps, 1)
			if err != nil {
				t.Fatal(err)
			}
			streamed, err := core.EvaluateExitBlocks(src, engine.MustBuildExit(equivExitSpecs[0]))
			if err != nil {
				t.Fatalf("stream replay: %v", err)
			}
			cached, err := core.EvaluateExitBlocks(c.Blocks(), engine.MustBuildExit(equivExitSpecs[0]))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(streamed, cached) {
				t.Errorf("streamed %+v != cached columnar %+v", streamed, cached)
			}
		})
	}
}

// TestReplayFallsBackOnCorruptTrace: a trace that fails resolution must
// replay through the reference path with its historical behavior intact
// (here: an out-of-range exit index that the exit replay tolerates).
func TestReplayFallsBackOnCorruptTrace(t *testing.T) {
	g := &tfg.Graph{Tasks: map[isa.Addr]*tfg.Task{
		1: {Start: 1, Blocks: []isa.Addr{1}, Exits: []tfg.ExitSpec{{Kind: isa.KindBranch, Target: 1, HasTarget: true}}},
	}}
	g.Finalize()
	tr := &trace.Trace{Graph: g, Steps: []trace.Step{
		{Task: 1, Exit: 0, Target: 1},
		{Task: 1, Exit: 3, Target: 1}, // out of range: resolution fails
		{Task: 1, Exit: trace.HaltExit},
	}}
	if _, err := tr.Resolved(); err == nil {
		t.Fatal("corrupt trace resolved")
	}
	res := core.EvaluateExit(tr, engine.MustBuildExit(equivExitSpecs[0]))
	if res.Steps != 2 {
		t.Fatalf("fallback replay scored %d steps, want 2", res.Steps)
	}
}

// ---- allocation contract -------------------------------------------------

// probeExit is a minimal ExitPredictor: the cheapest real interface
// implementation possible, so replay-loop measurements and allocation
// assertions see the loop itself rather than predictor internals.
type probeExit struct{ n int }

func (p *probeExit) Name() string                     { return "probe-exit" }
func (p *probeExit) PredictExit(t *tfg.Task) int      { p.n++; return 0 }
func (p *probeExit) UpdateExit(t *tfg.Task, exit int) {}
func (p *probeExit) Reset()                           { p.n = 0 }
func (p *probeExit) States() int                      { return p.n }

// probeTask is the TaskPredictor analog of probeExit (a last-target
// predictor, so comparisons still exercise both miss branches).
type probeTask struct{ last isa.Addr }

func (p *probeTask) Name() string { return "probe-task" }
func (p *probeTask) Predict(t *tfg.Task) core.Prediction {
	return core.Prediction{Exit: 0, Target: p.last}
}
func (p *probeTask) Update(t *tfg.Task, o core.Outcome) { p.last = o.Target }
func (p *probeTask) Reset()                             { p.last = 0 }

// probeBuf is the TargetBuffer analog: a one-entry last-target buffer.
type probeBuf struct {
	target isa.Addr
	n      int
}

func (b *probeBuf) Name() string                         { return "probe-buf" }
func (b *probeBuf) Lookup(cur isa.Addr) (isa.Addr, bool) { return b.target, b.target != 0 }
func (b *probeBuf) Train(cur isa.Addr, actual isa.Addr)  { b.target = actual; b.n++ }
func (b *probeBuf) Advance(cur isa.Addr)                 {}
func (b *probeBuf) Reset()                               { b.target, b.n = 0, 0 }
func (b *probeBuf) States() int                          { return b.n }

// The probes also implement the core.*BlockReplayer fast paths, issuing
// the same logical call sequence inline. Benchmarks use them to measure
// the one-interface-call-per-block floor; the equivalence tests above
// pin the real predictors' fast paths (PathExit) against the generic
// loops, and these probe implementations are covered by
// TestBlockReplayAllocationFree.

func (p *probeExit) ReplayExitBlock(blk *trace.Block) (steps, misses int) {
	for i := 0; i < blk.N; i++ {
		e := blk.Exits[i]
		if e == trace.HaltExit {
			continue
		}
		p.n++ // PredictExit side effect
		steps++
		if e != 0 { // probe always predicts exit 0
			misses++
		}
	}
	return steps, misses
}

func (b *probeBuf) ReplayTargetBlock(blk *trace.Block) (steps, misses int) {
	entries := blk.Dict.Entries
	n := blk.N
	taskIdx, exits, targetIdx := blk.TaskIdx[:n], blk.Exits[:n], blk.TargetIdx[:n]
	for i, e := range exits {
		ent := &entries[taskIdx[i]]
		// e&3 lets the compiler drop the Indirect bounds check; encoded
		// non-halt exits are already validated < NumExits <= MaxExits.
		if e != trace.HaltExit && ent.Indirect[e&3] {
			target := entries[targetIdx[i]].Addr
			steps++
			if b.target == 0 || b.target != target {
				misses++
			}
			b.target = target
			b.n++
		}
		// Advance is a no-op for the probe.
	}
	return steps, misses
}

func (p *probeTask) ReplayTaskBlock(blk *trace.Block, byKind *[isa.NumControlKinds]core.KindMisses) (steps, exitMisses, misses int) {
	entries := blk.Dict.Entries
	for i := 0; i < blk.N; i++ {
		e := blk.Exits[i]
		if e == trace.HaltExit {
			continue
		}
		ent := &entries[blk.TaskIdx[i]]
		target := entries[blk.TargetIdx[i]].Addr
		steps++
		km := &byKind[ent.Kinds[e]]
		km.Steps++
		if e != 0 { // probe always predicts exit 0
			exitMisses++
		}
		if p.last != target {
			misses++
			km.Misses++
		}
		p.last = target
	}
	return steps, exitMisses, misses
}

// TestResolvedReplayAllocationFree pins the tentpole's allocation
// contract: the resolved replay loops allocate nothing per step. Exit and
// indirect replay allocate nothing at all; task replay allocates only the
// end-of-run ByKind map (a small constant independent of trace length).
func TestResolvedReplayAllocationFree(t *testing.T) {
	_, rt := equivTrace(t, "exprc")

	ep := &probeExit{}
	core.EvaluateExitResolved(rt, ep) // warm any lazy state
	if allocs := testing.AllocsPerRun(3, func() { core.EvaluateExitResolved(rt, ep) }); allocs != 0 {
		t.Errorf("EvaluateExitResolved: %.1f allocs per %d-step replay, want 0", allocs, rt.Len())
	}

	bp := &probeBuf{}
	core.EvaluateIndirectResolved(rt, bp)
	if allocs := testing.AllocsPerRun(3, func() { core.EvaluateIndirectResolved(rt, bp) }); allocs != 0 {
		t.Errorf("EvaluateIndirectResolved: %.1f allocs per %d-step replay, want 0", allocs, rt.Len())
	}

	tp := &probeTask{}
	core.EvaluateTaskResolved(rt, tp)
	if allocs := testing.AllocsPerRun(3, func() { core.EvaluateTaskResolved(rt, tp) }); allocs > 8 {
		t.Errorf("EvaluateTaskResolved: %.1f allocs per %d-step replay, want <= 8 (the ByKind map)", allocs, rt.Len())
	}
}

// TestBlockReplayAllocationFree pins the same contract on the block
// kernels: replaying N steps costs a constant few allocations (the
// cursor and, for task replay, the end-of-run ByKind map) — never
// per-step or per-block ones.
func TestBlockReplayAllocationFree(t *testing.T) {
	c := equivColumnar(t, "exprc")

	ep := &probeExit{}
	if _, err := core.EvaluateExitBlocks(c.Blocks(), ep); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(3, func() { core.EvaluateExitBlocks(c.Blocks(), ep) }); allocs > 2 {
		t.Errorf("EvaluateExitBlocks: %.1f allocs per %d-step replay, want <= 2 (the cursor)", allocs, c.Len())
	}

	bp := &probeBuf{}
	if _, err := core.EvaluateIndirectBlocks(c.Blocks(), bp); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(3, func() { core.EvaluateIndirectBlocks(c.Blocks(), bp) }); allocs > 2 {
		t.Errorf("EvaluateIndirectBlocks: %.1f allocs per %d-step replay, want <= 2 (the cursor)", allocs, c.Len())
	}

	tp := &probeTask{}
	if _, err := core.EvaluateTaskBlocks(c.Blocks(), tp); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(3, func() { core.EvaluateTaskBlocks(c.Blocks(), tp) }); allocs > 10 {
		t.Errorf("EvaluateTaskBlocks: %.1f allocs per %d-step replay, want <= 10 (cursor + ByKind map)", allocs, c.Len())
	}
}
