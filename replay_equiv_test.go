package multiscalar_test

// Differential tests for the resolved-trace fast replay path: every
// Evaluate* result — counts, miss breakdowns, States, ByKind — must be
// identical between the resolved fast path and the unresolved reference
// path, on every workload, and the fast path must not allocate per step.

import (
	"reflect"
	"testing"

	"multiscalar/internal/core"
	"multiscalar/internal/engine"
	"multiscalar/internal/isa"
	"multiscalar/internal/tfg"
	"multiscalar/internal/trace"
	"multiscalar/internal/workload"
)

// equivSteps keeps the five-workload differential sweep in the seconds
// range (the full traces are covered by the workload self-check tests;
// the replay loops are step-position-independent).
const equivSteps = 60000

func equivTrace(tb testing.TB, name string) (*trace.Trace, *trace.Resolved) {
	tb.Helper()
	tr, err := workload.CachedTrace(name, equivSteps)
	if err != nil {
		tb.Fatal(err)
	}
	rt, err := tr.Resolved()
	if err != nil {
		tb.Fatal(err)
	}
	return tr, rt
}

var equivExitSpecs = []string{
	"path:d7-o5-l6-c6-f3:leh2",
	"path:d2-o4-l5-c5:vc2rand:seed7",
	"global:d7-c14-i14:leh2",
	"per:d7-h12-t14-i14:leh2",
	"ipath:d7:leh2",
}

var equivTargetSpecs = []string{
	"cttb:d7-o4-l4-c5-f3",
	"icttb:d7",
}

var equivTaskSpecs = []string{
	"composed:path:d7-o5-l6-c6-f3:leh2:ras32:cttb:d7-o4-l4-c5-f3",
	"composed:ipath:d7:leh2:ras32:icttb:d7",
	"composed:path:d7-o5-l6-c6-f3:leh2:noras",
	"cttb:d7-o4-l4-c5-f3",
}

func TestReplayEquivalence(t *testing.T) {
	for _, name := range workload.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			tr, rt := equivTrace(t, name)
			for _, spec := range equivExitSpecs {
				slow := core.EvaluateExitUnresolved(tr, engine.MustBuildExit(spec))
				fast := core.EvaluateExitResolved(rt, engine.MustBuildExit(spec))
				if !reflect.DeepEqual(slow, fast) {
					t.Errorf("exit %s: unresolved %+v != resolved %+v", spec, slow, fast)
				}
			}
			for _, spec := range equivTargetSpecs {
				slow := core.EvaluateIndirectUnresolved(tr, engine.MustBuildTarget(spec))
				fast := core.EvaluateIndirectResolved(rt, engine.MustBuildTarget(spec))
				if !reflect.DeepEqual(slow, fast) {
					t.Errorf("target %s: unresolved %+v != resolved %+v", spec, slow, fast)
				}
			}
			for _, spec := range equivTaskSpecs {
				slow := core.EvaluateTaskUnresolved(tr, engine.MustBuild(spec))
				fast := core.EvaluateTaskResolved(rt, engine.MustBuild(spec))
				if !reflect.DeepEqual(slow, fast) {
					t.Errorf("task %s: unresolved %+v != resolved %+v", spec, slow, fast)
				}
			}
			// The public entry points take the fast path on a resolvable
			// trace and must agree with the reference too.
			spec := equivTaskSpecs[0]
			auto := core.EvaluateTask(tr, engine.MustBuild(spec))
			slow := core.EvaluateTaskUnresolved(tr, engine.MustBuild(spec))
			if !reflect.DeepEqual(auto, slow) {
				t.Errorf("EvaluateTask %s: %+v != unresolved %+v", spec, auto, slow)
			}
		})
	}
}

// TestReplayFallsBackOnCorruptTrace: a trace that fails resolution must
// replay through the reference path with its historical behavior intact
// (here: an out-of-range exit index that the exit replay tolerates).
func TestReplayFallsBackOnCorruptTrace(t *testing.T) {
	g := &tfg.Graph{Tasks: map[isa.Addr]*tfg.Task{
		1: {Start: 1, Blocks: []isa.Addr{1}, Exits: []tfg.ExitSpec{{Kind: isa.KindBranch, Target: 1, HasTarget: true}}},
	}}
	g.Finalize()
	tr := &trace.Trace{Graph: g, Steps: []trace.Step{
		{Task: 1, Exit: 0, Target: 1},
		{Task: 1, Exit: 3, Target: 1}, // out of range: resolution fails
		{Task: 1, Exit: trace.HaltExit},
	}}
	if _, err := tr.Resolved(); err == nil {
		t.Fatal("corrupt trace resolved")
	}
	res := core.EvaluateExit(tr, engine.MustBuildExit(equivExitSpecs[0]))
	if res.Steps != 2 {
		t.Fatalf("fallback replay scored %d steps, want 2", res.Steps)
	}
}

// ---- allocation contract -------------------------------------------------

// probeExit is a minimal ExitPredictor: the cheapest real interface
// implementation possible, so replay-loop measurements and allocation
// assertions see the loop itself rather than predictor internals.
type probeExit struct{ n int }

func (p *probeExit) Name() string                     { return "probe-exit" }
func (p *probeExit) PredictExit(t *tfg.Task) int      { p.n++; return 0 }
func (p *probeExit) UpdateExit(t *tfg.Task, exit int) {}
func (p *probeExit) Reset()                           { p.n = 0 }
func (p *probeExit) States() int                      { return p.n }

// probeTask is the TaskPredictor analog of probeExit (a last-target
// predictor, so comparisons still exercise both miss branches).
type probeTask struct{ last isa.Addr }

func (p *probeTask) Name() string { return "probe-task" }
func (p *probeTask) Predict(t *tfg.Task) core.Prediction {
	return core.Prediction{Exit: 0, Target: p.last}
}
func (p *probeTask) Update(t *tfg.Task, o core.Outcome) { p.last = o.Target }
func (p *probeTask) Reset()                             { p.last = 0 }

// probeBuf is the TargetBuffer analog: a one-entry last-target buffer.
type probeBuf struct {
	target isa.Addr
	n      int
}

func (b *probeBuf) Name() string                         { return "probe-buf" }
func (b *probeBuf) Lookup(cur isa.Addr) (isa.Addr, bool) { return b.target, b.target != 0 }
func (b *probeBuf) Train(cur isa.Addr, actual isa.Addr)  { b.target = actual; b.n++ }
func (b *probeBuf) Advance(cur isa.Addr)                 {}
func (b *probeBuf) Reset()                               { b.target, b.n = 0, 0 }
func (b *probeBuf) States() int                          { return b.n }

// TestResolvedReplayAllocationFree pins the tentpole's allocation
// contract: the resolved replay loops allocate nothing per step. Exit and
// indirect replay allocate nothing at all; task replay allocates only the
// end-of-run ByKind map (a small constant independent of trace length).
func TestResolvedReplayAllocationFree(t *testing.T) {
	_, rt := equivTrace(t, "exprc")

	ep := &probeExit{}
	core.EvaluateExitResolved(rt, ep) // warm any lazy state
	if allocs := testing.AllocsPerRun(3, func() { core.EvaluateExitResolved(rt, ep) }); allocs != 0 {
		t.Errorf("EvaluateExitResolved: %.1f allocs per %d-step replay, want 0", allocs, rt.Len())
	}

	bp := &probeBuf{}
	core.EvaluateIndirectResolved(rt, bp)
	if allocs := testing.AllocsPerRun(3, func() { core.EvaluateIndirectResolved(rt, bp) }); allocs != 0 {
		t.Errorf("EvaluateIndirectResolved: %.1f allocs per %d-step replay, want 0", allocs, rt.Len())
	}

	tp := &probeTask{}
	core.EvaluateTaskResolved(rt, tp)
	if allocs := testing.AllocsPerRun(3, func() { core.EvaluateTaskResolved(rt, tp) }); allocs > 8 {
		t.Errorf("EvaluateTaskResolved: %.1f allocs per %d-step replay, want <= 8 (the ByKind map)", allocs, rt.Len())
	}
}
