// Command mservesmoke is the CI end-to-end smoke for cmd/mserve: it
// builds the daemon, starts it on an ephemeral port, and drives the full
// robustness envelope from outside the process — cold grid pass, cached
// re-pass (every answer byte-identical and marked "hit"), a live
// progress pass (the SSE stream for a long cold cell must deliver
// progress events and terminate with exactly the cached result's key),
// a /statusz capture (written to the second argument for checkjson), an
// oversized body (413), an overload burst that must shed with
// 429+Retry-After, and finally SIGTERM for a graceful drain with a
// flushed metrics snapshot (validated by scripts/checkjson from
// check.sh).
//
// Usage: mservesmoke <metrics-out-path> <statusz-out-path>
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

type cell struct {
	workload string
	spec     string
	steps    int
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "mservesmoke: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("mservesmoke: OK")
}

func run() error {
	if len(os.Args) != 3 {
		return fmt.Errorf("usage: mservesmoke <metrics-out-path> <statusz-out-path>")
	}
	metricsOut, statuszOut := os.Args[1], os.Args[2]

	tmp, err := os.MkdirTemp("", "mservesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "mserve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/mserve")
	build.Stdout, build.Stderr = os.Stderr, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building mserve: %w", err)
	}

	addrFile := filepath.Join(tmp, "addr")
	daemon := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-addr-file", addrFile,
		"-workers", "1", "-queue", "2",
		"-progress-interval", "5ms", "-sample-interval", "50ms",
		"-metrics-out", metricsOut)
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		return fmt.Errorf("starting mserve: %w", err)
	}
	defer daemon.Process.Kill() // no-op after a clean Wait

	// Wait for the daemon to announce its ephemeral address.
	var base string
	for i := 0; i < 100; i++ {
		if b, err := os.ReadFile(addrFile); err == nil && len(bytes.TrimSpace(b)) > 0 {
			base = "http://" + strings.TrimSpace(string(b))
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if base == "" {
		return fmt.Errorf("daemon never wrote %s", addrFile)
	}
	client := &http.Client{Timeout: 2 * time.Minute}

	grid := []cell{}
	for _, wl := range []string{"exprc", "boolmin"} {
		for _, spec := range []string{
			"path:d7-o5-l6-c6-f3:leh2",
			"cttb:d7-o4-l4-c5-f3",
			"composed:path:d7-o5-l6-c6-f3:leh2:ras32:cttb:d7-o4-l4-c5-f3",
		} {
			grid = append(grid, cell{workload: wl, spec: spec, steps: 4000})
		}
	}

	// Pass 1 (cold): every cell evaluates and answers 200.
	first := make(map[string][]byte, len(grid))
	for _, c := range grid {
		status, hdr, body, err := post(client, base, c)
		if err != nil {
			return fmt.Errorf("cold pass %s/%s: %w", c.workload, c.spec, err)
		}
		if status != 200 {
			return fmt.Errorf("cold pass %s/%s: status %d: %s", c.workload, c.spec, status, body)
		}
		if cp := hdr.Get("X-Mserve-Cache"); cp != "miss" {
			return fmt.Errorf("cold pass %s/%s: cache path %q, want miss", c.workload, c.spec, cp)
		}
		first[c.workload+"/"+c.spec] = body
	}
	fmt.Printf("mservesmoke: cold pass ok (%d cells)\n", len(grid))

	// Pass 2 (warm): every answer must come from the cache, byte-identical.
	for _, c := range grid {
		status, hdr, body, err := post(client, base, c)
		if err != nil {
			return fmt.Errorf("warm pass %s/%s: %w", c.workload, c.spec, err)
		}
		if status != 200 {
			return fmt.Errorf("warm pass %s/%s: status %d", c.workload, c.spec, status)
		}
		if cp := hdr.Get("X-Mserve-Cache"); cp != "hit" {
			return fmt.Errorf("warm pass %s/%s: cache path %q, want hit", c.workload, c.spec, cp)
		}
		if !bytes.Equal(body, first[c.workload+"/"+c.spec]) {
			return fmt.Errorf("warm pass %s/%s: cached bytes differ from the cold answer", c.workload, c.spec)
		}
	}
	fmt.Println("mservesmoke: warm pass ok (all hits, byte-identical)")

	// Live progress pass: open the SSE stream for a long cold cell
	// before it is even submitted (?wait covers the gap), POST it, and
	// require the stream to deliver progress events and terminate with a
	// done event naming exactly the key the cached response body carries.
	progCell := cell{workload: "boolmin", spec: "path:d2-o4-l5-c5:vc2rand:seed777", steps: 120000}
	progKey := fmt.Sprintf("%s/%s@mode=exit,steps=%d,timing=0", progCell.workload, progCell.spec, progCell.steps)

	type streamResult struct {
		progress int
		done     map[string]any
		err      error
	}
	streamCh := make(chan streamResult, 1)
	go func() {
		resp, err := client.Get(base + "/progress?key=" + url.QueryEscape(progKey) + "&wait=15")
		if err != nil {
			streamCh <- streamResult{err: err}
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			b, _ := io.ReadAll(resp.Body)
			streamCh <- streamResult{err: fmt.Errorf("progress stream status %d: %s", resp.StatusCode, b)}
			return
		}
		var res streamResult
		sc := bufio.NewScanner(resp.Body)
		event, data := "", ""
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				data = strings.TrimPrefix(line, "data: ")
			case line == "":
				switch event {
				case "progress":
					res.progress++
				case "done":
					if err := json.Unmarshal([]byte(data), &res.done); err != nil {
						res.err = fmt.Errorf("bad done payload %q: %v", data, err)
					}
					streamCh <- res
					return
				}
				event, data = "", ""
			}
		}
		res.err = fmt.Errorf("progress stream ended without a done event (scan err %v)", sc.Err())
		streamCh <- res
	}()

	// Give the watcher a moment to enter its wait loop, then submit.
	time.Sleep(200 * time.Millisecond)
	status, _, body, err := post(client, base, progCell)
	if err != nil || status != 200 {
		return fmt.Errorf("progress cell POST: status %d err %v", status, err)
	}
	var evalBody map[string]any
	if err := json.Unmarshal(body, &evalBody); err != nil {
		return fmt.Errorf("progress cell body: %w", err)
	}
	bodyKey, _ := evalBody["key"].(string)
	if bodyKey != progKey {
		return fmt.Errorf("progress cell key = %q, want %q", bodyKey, progKey)
	}

	sres := <-streamCh
	if sres.err != nil {
		return fmt.Errorf("progress stream: %w", sres.err)
	}
	if sres.progress < 1 {
		return fmt.Errorf("progress stream delivered no progress events before done")
	}
	if ok, _ := sres.done["ok"].(bool); !ok {
		return fmt.Errorf("progress done event not ok: %v", sres.done)
	}
	if doneKey, _ := sres.done["key"].(string); doneKey != bodyKey {
		return fmt.Errorf("progress stream ended with key %q, cached body has %q", sres.done["key"], bodyKey)
	}
	status, hdr, _, err := post(client, base, progCell)
	if err != nil || status != 200 || hdr.Get("X-Mserve-Cache") != "hit" {
		return fmt.Errorf("progress cell re-POST: status %d cache %q err %v, want cached hit", status, hdr.Get("X-Mserve-Cache"), err)
	}
	fmt.Printf("mservesmoke: progress pass ok (%d progress events, done key matches cached result)\n", sres.progress)

	// Statusz capture: must answer with a request id and a body that
	// checkjson validates (pool/cache/runs sections + ordered series).
	resp, err := client.Get(base + "/statusz")
	if err != nil {
		return fmt.Errorf("GET /statusz: %w", err)
	}
	szBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 {
		return fmt.Errorf("GET /statusz: status %d err %v", resp.StatusCode, err)
	}
	if resp.Header.Get("X-Mserve-Request") == "" {
		return fmt.Errorf("/statusz response missing X-Mserve-Request id")
	}
	if err := os.WriteFile(statuszOut, szBody, 0o644); err != nil {
		return fmt.Errorf("writing statusz capture: %w", err)
	}
	fmt.Println("mservesmoke: statusz captured")

	// Hardened decoder: an oversized body must be a structured 413.
	big := `{"workload":"boolmin","spec":"` + strings.Repeat("x", 1<<17) + `"}`
	resp, err = client.Post(base+"/eval", "application/json", strings.NewReader(big))
	if err != nil {
		return fmt.Errorf("oversized POST: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		return fmt.Errorf("oversized body: status %d, want 413", resp.StatusCode)
	}
	fmt.Println("mservesmoke: oversized body rejected (413)")

	// Overload burst: fire 8× the daemon's admission capacity (1 worker +
	// 2 queued = 3) of simultaneous distinct cells. Tiny cells evaluate
	// fast, so a round can theoretically drain before the burst lands —
	// retry a few rounds with fresh (uncached) cells; at least one round
	// must produce a 429 carrying Retry-After >= 1.
	const burst = 24
	shed := false
	for round := 0; round < 5 && !shed; round++ {
		var wg sync.WaitGroup
		sheds := make([]int, burst)
		barrier := make(chan struct{})
		for i := 0; i < burst; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				c := cell{
					workload: "boolmin",
					spec:     fmt.Sprintf("path:d2-o4-l5-c5:vc2rand:seed%d", 1000*round+i+1),
					steps:    60000,
				}
				<-barrier
				status, hdr, body, err := post(client, base, c)
				if err != nil {
					fmt.Fprintf(os.Stderr, "mservesmoke: burst POST: %v\n", err)
					return
				}
				switch status {
				case 200:
				case http.StatusTooManyRequests:
					if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err == nil && ra >= 1 {
						sheds[i] = 1
					} else {
						fmt.Fprintf(os.Stderr, "mservesmoke: 429 without a positive Retry-After (%q)\n", hdr.Get("Retry-After"))
					}
				default:
					fmt.Fprintf(os.Stderr, "mservesmoke: burst status %d (want 200 or 429): %s\n", status, body)
				}
			}(i)
		}
		close(barrier)
		wg.Wait()
		n := 0
		for _, s := range sheds {
			n += s
		}
		fmt.Printf("mservesmoke: burst round %d: %d/%d shed with Retry-After\n", round+1, n, burst)
		shed = n > 0
	}
	if !shed {
		return fmt.Errorf("burst never shed: admission control did not engage at 8x capacity")
	}

	// Graceful drain: SIGTERM must exit 0 and flush the metrics snapshot.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("SIGTERM: %w", err)
	}
	if err := daemon.Wait(); err != nil {
		return fmt.Errorf("daemon did not drain cleanly: %w", err)
	}
	if fi, err := os.Stat(metricsOut); err != nil || fi.Size() == 0 {
		return fmt.Errorf("metrics snapshot missing or empty at %s (stat err %v)", metricsOut, err)
	}
	fmt.Println("mservesmoke: SIGTERM drained cleanly, metrics flushed")
	return nil
}

// post issues one /eval request for a cell.
func post(client *http.Client, base string, c cell) (int, http.Header, []byte, error) {
	body := fmt.Sprintf(`{"workload":%q,"spec":%q,"steps":%d}`, c.workload, c.spec, c.steps)
	resp, err := client.Post(base+"/eval", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, b, nil
}
