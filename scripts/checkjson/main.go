// Command checkjson validates observability output files for the CI
// smoke in scripts/check.sh: each argument must parse as JSON, a
// -metrics-out snapshot must be an object with counters/gauges/
// histograms sections, a /statusz capture must carry pool/cache/runs
// sections plus a well-formed time series, and a -trace-out file must
// be a JSON array of trace events each carrying the fields Perfetto
// requires.
//
// Usage:
//
//	go run ./scripts/checkjson metrics.json trace.json
//	go run ./scripts/checkjson -max-gauge mtrace.stream.peak_heap_bytes=33554432 metrics.json
//	go run ./scripts/checkjson -min-counter core.spec.rollbacks=1 metrics.json
//
// File roles are sniffed from the parsed shape (object with "counters"
// = metrics snapshot, object with "pool" = statusz capture, array =
// trace). -max-gauge NAME=VALUE (repeatable) additionally requires the
// named gauge to exist in at least one validated metrics snapshot with
// a value no greater than VALUE; -min-counter NAME=VALUE (repeatable)
// requires the named counter to exist with a value no less than VALUE
// (the smoke-test shape for "this code path actually fired"). Exit
// status 0 iff every file, every ceiling and every floor validates.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// gaugeCeiling is one -max-gauge NAME=VALUE assertion.
type gaugeCeiling struct {
	name string
	max  int64
	seen bool
}

// gaugeFlags collects repeated -max-gauge flags.
type gaugeFlags []*gaugeCeiling

func (g *gaugeFlags) String() string { return "" }

func (g *gaugeFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want NAME=VALUE, got %q", s)
	}
	max, err := strconv.ParseInt(val, 10, 64)
	if err != nil {
		return fmt.Errorf("bad ceiling in %q: %v", s, err)
	}
	*g = append(*g, &gaugeCeiling{name: name, max: max})
	return nil
}

// counterFloor is one -min-counter NAME=VALUE assertion.
type counterFloor struct {
	name string
	min  int64
	seen bool
}

// counterFlags collects repeated -min-counter flags.
type counterFlags []*counterFloor

func (c *counterFlags) String() string { return "" }

func (c *counterFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want NAME=VALUE, got %q", s)
	}
	min, err := strconv.ParseInt(val, 10, 64)
	if err != nil {
		return fmt.Errorf("bad floor in %q: %v", s, err)
	}
	*c = append(*c, &counterFloor{name: name, min: min})
	return nil
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	var ceilings gaugeFlags
	var floors counterFlags
	files := []string{}
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-max-gauge":
			if i+1 >= len(args) {
				fmt.Fprintln(os.Stderr, "checkjson: -max-gauge needs NAME=VALUE")
				return 2
			}
			i++
			if err := ceilings.Set(args[i]); err != nil {
				fmt.Fprintf(os.Stderr, "checkjson: -max-gauge: %v\n", err)
				return 2
			}
		case "-min-counter":
			if i+1 >= len(args) {
				fmt.Fprintln(os.Stderr, "checkjson: -min-counter needs NAME=VALUE")
				return 2
			}
			i++
			if err := floors.Set(args[i]); err != nil {
				fmt.Fprintf(os.Stderr, "checkjson: -min-counter: %v\n", err)
				return 2
			}
		default:
			files = append(files, args[i])
		}
	}
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "usage: checkjson [-max-gauge NAME=VALUE]... [-min-counter NAME=VALUE]... file.json ...")
		return 2
	}
	failed := false
	for _, path := range files {
		if err := check(path, ceilings, floors); err != nil {
			fmt.Fprintf(os.Stderr, "checkjson: %s: %v\n", path, err)
			failed = true
			continue
		}
		fmt.Printf("checkjson: %s ok\n", path)
	}
	for _, c := range ceilings {
		if !c.seen {
			fmt.Fprintf(os.Stderr, "checkjson: gauge %q not found in any metrics snapshot\n", c.name)
			failed = true
		}
	}
	for _, c := range floors {
		if !c.seen {
			fmt.Fprintf(os.Stderr, "checkjson: counter %q not found in any metrics snapshot\n", c.name)
			failed = true
		}
	}
	if failed {
		return 1
	}
	return 0
}

func check(path string, ceilings gaugeFlags, floors counterFlags) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	switch doc := v.(type) {
	case map[string]any:
		if _, ok := doc["counters"]; ok {
			return checkMetrics(doc, ceilings, floors)
		}
		if _, ok := doc["pool"]; ok {
			return checkStatusz(doc)
		}
		return fmt.Errorf("object is neither a metrics snapshot (no %q) nor a statusz capture (no %q)", "counters", "pool")
	case []any:
		return checkTrace(doc)
	default:
		return fmt.Errorf("top-level JSON is %T, want an object (metrics/statusz) or array (trace)", v)
	}
}

// checkMetrics validates a -metrics-out snapshot: the three sections
// exist, every metric entry names itself, and any -max-gauge ceilings
// or -min-counter floors that match a metric here hold.
func checkMetrics(doc map[string]any, ceilings gaugeFlags, floors counterFlags) error {
	for _, section := range []string{"counters", "gauges", "histograms"} {
		raw, ok := doc[section]
		if !ok {
			return fmt.Errorf("metrics snapshot missing %q section", section)
		}
		list, ok := raw.([]any)
		if !ok {
			return fmt.Errorf("metrics section %q is %T, want array", section, raw)
		}
		prev := ""
		for i, entry := range list {
			m, ok := entry.(map[string]any)
			if !ok {
				return fmt.Errorf("%s[%d] is %T, want object", section, i, entry)
			}
			name, _ := m["name"].(string)
			if name == "" {
				return fmt.Errorf("%s[%d] has no name", section, i)
			}
			if name <= prev {
				return fmt.Errorf("%s not sorted: %q after %q", section, name, prev)
			}
			prev = name
			if section == "gauges" {
				for _, c := range ceilings {
					if c.name != name {
						continue
					}
					c.seen = true
					val, ok := m["value"].(float64)
					if !ok {
						return fmt.Errorf("gauge %q has non-numeric value %v", name, m["value"])
					}
					if int64(val) > c.max {
						return fmt.Errorf("gauge %q = %d exceeds ceiling %d", name, int64(val), c.max)
					}
				}
			}
			if section == "counters" {
				for _, c := range floors {
					if c.name != name {
						continue
					}
					c.seen = true
					val, ok := m["value"].(float64)
					if !ok {
						return fmt.Errorf("counter %q has non-numeric value %v", name, m["value"])
					}
					if int64(val) < c.min {
						return fmt.Errorf("counter %q = %d below floor %d", name, int64(val), c.min)
					}
				}
			}
		}
	}
	return nil
}

// checkStatusz validates a /statusz capture: pool occupancy, cache and
// runs sections, and a time series whose samples are chronologically
// ordered with sorted metric names.
func checkStatusz(doc map[string]any) error {
	pool, ok := doc["pool"].(map[string]any)
	if !ok {
		return fmt.Errorf("statusz %q is %T, want object", "pool", doc["pool"])
	}
	if w, _ := pool["workers"].(float64); w < 1 {
		return fmt.Errorf("statusz pool.workers = %v, want >= 1", pool["workers"])
	}
	if _, ok := doc["cache"].(map[string]any); !ok {
		return fmt.Errorf("statusz %q is %T, want object", "cache", doc["cache"])
	}
	if _, ok := doc["runs"].(map[string]any); !ok {
		return fmt.Errorf("statusz %q is %T, want object", "runs", doc["runs"])
	}
	series, ok := doc["series"].(map[string]any)
	if !ok {
		return fmt.Errorf("statusz %q is %T, want object", "series", doc["series"])
	}
	return checkSeries(series)
}

// checkSeries validates a time-series export: samples in chronological
// order, each with counters/gauges sorted by name.
func checkSeries(doc map[string]any) error {
	samples, ok := doc["samples"].([]any)
	if !ok {
		return fmt.Errorf("series %q is %T, want array", "samples", doc["samples"])
	}
	prevMS := float64(0)
	for i, raw := range samples {
		s, ok := raw.(map[string]any)
		if !ok {
			return fmt.Errorf("series sample %d is %T, want object", i, raw)
		}
		ms, ok := s["unix_ms"].(float64)
		if !ok {
			return fmt.Errorf("series sample %d has no unix_ms", i)
		}
		if ms < prevMS {
			return fmt.Errorf("series samples out of order: sample %d at %v after %v", i, ms, prevMS)
		}
		prevMS = ms
		for _, section := range []string{"counters", "gauges"} {
			list, ok := s[section].([]any)
			if !ok {
				continue // empty sections may be null
			}
			prev := ""
			for j, entry := range list {
				m, ok := entry.(map[string]any)
				if !ok {
					return fmt.Errorf("sample %d %s[%d] is %T, want object", i, section, j, entry)
				}
				name, _ := m["name"].(string)
				if name == "" {
					return fmt.Errorf("sample %d %s[%d] has no name", i, section, j)
				}
				if name <= prev {
					return fmt.Errorf("sample %d %s not sorted: %q after %q", i, section, name, prev)
				}
				prev = name
			}
		}
	}
	return nil
}

// checkTrace validates a -trace-out file: every event is an object with
// the name/ph/ts/pid/tid fields trace viewers require.
func checkTrace(events []any) error {
	for i, entry := range events {
		ev, ok := entry.(map[string]any)
		if !ok {
			return fmt.Errorf("event %d is %T, want object", i, entry)
		}
		for _, field := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				return fmt.Errorf("event %d missing %q", i, field)
			}
		}
	}
	return nil
}
