// Command checkjson validates observability output files for the CI
// smoke in scripts/check.sh: each argument must parse as JSON, a
// -metrics-out snapshot must be an object with counters/gauges/
// histograms sections, and a -trace-out file must be a JSON array of
// trace events each carrying the fields Perfetto requires.
//
// Usage:
//
//	go run ./scripts/checkjson metrics.json trace.json
//
// File roles are sniffed from the parsed shape (object = metrics
// snapshot, array = trace). Exit status 0 iff every file validates.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: checkjson file.json ...")
		os.Exit(2)
	}
	failed := false
	for _, path := range os.Args[1:] {
		if err := check(path); err != nil {
			fmt.Fprintf(os.Stderr, "checkjson: %s: %v\n", path, err)
			failed = true
			continue
		}
		fmt.Printf("checkjson: %s ok\n", path)
	}
	if failed {
		os.Exit(1)
	}
}

func check(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	switch doc := v.(type) {
	case map[string]any:
		return checkMetrics(doc)
	case []any:
		return checkTrace(doc)
	default:
		return fmt.Errorf("top-level JSON is %T, want an object (metrics) or array (trace)", v)
	}
}

// checkMetrics validates a -metrics-out snapshot: the three sections
// exist and every metric entry names itself.
func checkMetrics(doc map[string]any) error {
	for _, section := range []string{"counters", "gauges", "histograms"} {
		raw, ok := doc[section]
		if !ok {
			return fmt.Errorf("metrics snapshot missing %q section", section)
		}
		list, ok := raw.([]any)
		if !ok {
			return fmt.Errorf("metrics section %q is %T, want array", section, raw)
		}
		prev := ""
		for i, entry := range list {
			m, ok := entry.(map[string]any)
			if !ok {
				return fmt.Errorf("%s[%d] is %T, want object", section, i, entry)
			}
			name, _ := m["name"].(string)
			if name == "" {
				return fmt.Errorf("%s[%d] has no name", section, i)
			}
			if name <= prev {
				return fmt.Errorf("%s not sorted: %q after %q", section, name, prev)
			}
			prev = name
		}
	}
	return nil
}

// checkTrace validates a -trace-out file: every event is an object with
// the name/ph/ts/pid/tid fields trace viewers require.
func checkTrace(events []any) error {
	for i, entry := range events {
		ev, ok := entry.(map[string]any)
		if !ok {
			return fmt.Errorf("event %d is %T, want object", i, entry)
		}
		for _, field := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				return fmt.Errorf("event %d missing %q", i, field)
			}
		}
	}
	return nil
}
