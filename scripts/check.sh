#!/bin/sh
# Tier-1 verification: build, vet, race-enabled tests (with a per-package
# watchdog so a hung test cannot wedge CI), a fuzz smoke over the
# hardened parsers, and the static analyzer over every built-in workload
# (zero error diagnostics required). Run from the repository root.
set -eu

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race -timeout 10m ./..."
go test -race -timeout 10m ./...

echo "==> fuzz smoke (5s per target)"
go test ./internal/core -run '^$' -fuzz FuzzRAS -fuzztime 5s >/dev/null
go test ./internal/trace -run '^$' -fuzz FuzzTraceRead -fuzztime 5s >/dev/null

echo "==> mlint -w all"
go run ./cmd/mlint -w all >/dev/null

echo "==> mlint fault spec check"
go run ./cmd/mlint -w exprc -fault all=1e-3,seed=7 >/dev/null

echo "OK"
