#!/bin/sh
# Tier-1 verification: build, vet, race-enabled tests (with a per-package
# watchdog so a hung test cannot wedge CI), a fuzz smoke over the
# hardened parsers, and the static analyzer over every built-in workload
# (zero error diagnostics required). Run from the repository root.
set -eu

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> detlint (determinism self-lint over our own source)"
go run ./scripts/detlint

echo "==> go test -race -timeout 10m ./..."
go test -race -timeout 10m ./...

echo "==> fuzz smoke (5s per target)"
go test ./internal/core -run '^$' -fuzz FuzzRAS -fuzztime 5s >/dev/null
go test ./internal/trace -run '^$' -fuzz FuzzTraceRead -fuzztime 5s >/dev/null
go test ./internal/trace -run '^$' -fuzz FuzzColumnarRead -fuzztime 5s >/dev/null

echo "==> mlint -w all"
go run ./cmd/mlint -w all >/dev/null

echo "==> mlint fault spec check"
go run ./cmd/mlint -w exprc -fault all=1e-3,seed=7 >/dev/null

echo "==> mlint predictor spec check"
go run ./cmd/mlint -w exprc -pred composed:path:d7-o5-l6-c6-f3:leh2:ras32:cttb:d7-o4-l4-c5-f3 >/dev/null

echo "==> mbench parallel smoke (-workers 4, truncated traces)"
go run ./cmd/mbench -exp all -steps 6000 -timing 4000 -workers 4 -journal '' >/dev/null

echo "==> obs smoke (-metrics-out / -trace-out produce valid JSON)"
OBS_TMP="${TMPDIR:-/tmp}"
go run ./cmd/mbench -exp fig7 -steps 6000 -journal '' \
	-metrics-out "$OBS_TMP/mbench-metrics.json" \
	-trace-out "$OBS_TMP/mbench-trace.json" >/dev/null
go run ./scripts/checkjson "$OBS_TMP/mbench-metrics.json" "$OBS_TMP/mbench-trace.json" >/dev/null
rm -f "$OBS_TMP/mbench-metrics.json" "$OBS_TMP/mbench-trace.json"

echo "==> speculative-update smoke (spec grammar end-to-end, rollback counters exported)"
# One replay + timing run in spec mode must actually roll back: checkjson
# asserts the core.spec.rollbacks counter is present and non-zero, so a
# regression that silently idealizes the run fails the gate. The
# specupdate experiment grid itself runs under "mbench -exp all" above.
go run ./cmd/msim -w exprc \
	-pred composed:path:d7-o5-l6-c6-f3:leh2:ras32:cttb:d7-o4-l4-c5-f3:spec:rlat8 \
	-steps 20000 -timing -metrics-out "$OBS_TMP/msim-spec.json" >/dev/null 2>&1
go run ./scripts/checkjson -min-counter core.spec.rollbacks=1 \
	-min-counter core.spec.repair_frames=1 "$OBS_TMP/msim-spec.json" >/dev/null
rm -f "$OBS_TMP/msim-spec.json"

echo "==> mserve selftest smoke (admission, dedup, deadline, drain invariants)"
go run ./cmd/mserve -selftest -clients 8 -requests 10 -steps 3000 >/dev/null

echo "==> mserve end-to-end smoke (daemon: cold/warm grid, SSE progress, statusz, 413, 429 burst, SIGTERM drain)"
go run ./scripts/mservesmoke "$OBS_TMP/mserve-metrics.json" "$OBS_TMP/mserve-statusz.json" >/dev/null
go run ./scripts/checkjson "$OBS_TMP/mserve-metrics.json" "$OBS_TMP/mserve-statusz.json" >/dev/null
rm -f "$OBS_TMP/mserve-metrics.json" "$OBS_TMP/mserve-statusz.json"

echo "==> columnar round-trip gate (legacy ⇄ MSTC, byte-identical, same replay)"
MT_TMP="${TMPDIR:-/tmp}"
go run ./cmd/mtrace record -w boolmin -steps 20000 "$MT_TMP/mt-legacy.trace" >/dev/null
go run ./cmd/mtrace convert -w boolmin "$MT_TMP/mt-legacy.trace" "$MT_TMP/mt-col.trace" >/dev/null
go run ./cmd/mtrace convert -w boolmin "$MT_TMP/mt-col.trace" "$MT_TMP/mt-back.trace" >/dev/null
cmp "$MT_TMP/mt-legacy.trace" "$MT_TMP/mt-back.trace"
go run ./cmd/mtrace replay -w boolmin "$MT_TMP/mt-legacy.trace" > "$MT_TMP/mt-replay-legacy.txt"
go run ./cmd/mtrace replay -w boolmin "$MT_TMP/mt-col.trace" > "$MT_TMP/mt-replay-col.txt"
cmp "$MT_TMP/mt-replay-legacy.txt" "$MT_TMP/mt-replay-col.txt"
rm -f "$MT_TMP/mt-legacy.trace" "$MT_TMP/mt-col.trace" "$MT_TMP/mt-back.trace" \
	"$MT_TMP/mt-replay-legacy.txt" "$MT_TMP/mt-replay-col.txt"

echo "==> streaming replay smoke (10M+ steps, bounded heap, peak-heap gauge)"
# Six back-to-back passes of the full exprc trace: >10M prediction steps
# whose in-memory equivalent exceeds 400 MiB, replayed under a 32 MiB
# heap ceiling (the generate→replay pipeline never materializes a trace).
# The sampled peak lands in the metrics snapshot as a gauge; checkjson
# re-asserts the same 32 MiB ceiling on the exported value.
go run ./cmd/mtrace stream -w exprc -repeat 6 -max-heap-mb 32 -progress 2048 \
	-metrics-out "$OBS_TMP/mtrace-metrics.json" >/dev/null
go run ./scripts/checkjson -max-gauge mtrace.stream.peak_heap_bytes=33554432 \
	"$OBS_TMP/mtrace-metrics.json" >/dev/null
rm -f "$OBS_TMP/mtrace-metrics.json"

echo "==> benchmark smoke (one iteration per benchmark)"
go test -run '^$' -bench . -benchtime 1x . >/dev/null

echo "==> benchdiff regression gate (replay micro-benchmarks vs BENCH_baseline.json)"
# Short iterations and a generous time band: the gate is for order-of-
# magnitude time regressions and any allocation growth (allocs/op is
# deterministic and held tight regardless of machine).
go run ./scripts/benchdiff -benchtime 2x -time-tol 4 >/dev/null

echo "OK"
