#!/bin/sh
# Tier-1 verification: build, vet, race-enabled tests, and the static
# analyzer over every built-in workload (zero error diagnostics required).
# Run from the repository root.
set -eu

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> mlint -w all"
go run ./cmd/mlint -w all >/dev/null

echo "OK"
