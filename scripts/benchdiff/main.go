// Command benchdiff is the benchmark regression gate for the replay hot
// path: it runs the replay micro-benchmarks (go test -bench), parses the
// results, and compares them against the committed baseline
// (BENCH_baseline.json at the repository root) with a tolerance band.
//
//	go run ./scripts/benchdiff              # compare against the baseline
//	go run ./scripts/benchdiff -write       # (re-)write the baseline
//	go run ./scripts/benchdiff -time-tol 4  # CI: only order-of-magnitude time gating
//
// Times (ns/op) are machine-dependent, so the time tolerance is
// deliberately generous in CI; allocations (allocs/op) are deterministic
// and gated tightly — a new allocation on the replay path fails the gate
// even when the timing band would absorb it. To re-baseline after an
// intentional performance change, run with -write on an otherwise idle
// machine and commit the refreshed JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Bench is one benchmark's recorded shape. NsOp and BOp ride along for
// the report; AllocsOp is the deterministic signal.
type Bench struct {
	NsOp     float64            `json:"ns_op"`
	BOp      float64            `json:"b_op"`
	AllocsOp float64            `json:"allocs_op"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the committed BENCH_baseline.json schema.
type Baseline struct {
	Go         string           `json:"go"`
	Note       string           `json:"note"`
	Benchmarks map[string]Bench `json:"benchmarks"`
}

var (
	benchRE   = flag.String("bench", "^(BenchmarkEvaluate|BenchmarkTraceResolve|BenchmarkColumnar)", "benchmark regex passed to go test -bench")
	benchtime = flag.String("benchtime", "3x", "go test -benchtime per benchmark")
	count     = flag.Int("count", 1, "go test -count; the best (minimum) of the runs is kept per benchmark")
	baseline  = flag.String("baseline", "BENCH_baseline.json", "baseline file, relative to the working directory")
	write     = flag.Bool("write", false, "write/refresh the baseline instead of comparing")
	timeTol   = flag.Float64("time-tol", 0.5, "allowed fractional ns/op slowdown (0.5 = 1.5x); times are machine-dependent, so CI uses a generous band")
	allocTol  = flag.Float64("alloc-tol", 0.1, "allowed fractional allocs/op growth, plus a flat slack of 2")
	verbose   = flag.Bool("v", false, "print the per-benchmark comparison even when everything passes")
)

// benchLine matches one `go test -bench` result line: name (with the
// trailing -GOMAXPROCS stripped), iteration count, then value/unit pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.+)$`)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	current, err := measure()
	if err != nil {
		return err
	}
	if len(current) == 0 {
		return fmt.Errorf("no benchmarks matched %q", *benchRE)
	}
	if *write {
		b := Baseline{
			Go:         runtime.Version(),
			Note:       "replay hot-path baseline; re-generate with `go run ./scripts/benchdiff -write` (see README)",
			Benchmarks: current,
		}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*baseline, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("benchdiff: wrote %d benchmarks to %s\n", len(current), *baseline)
		return nil
	}
	data, err := os.ReadFile(*baseline)
	if err != nil {
		return fmt.Errorf("read baseline (run with -write to create it): %w", err)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse %s: %w", *baseline, err)
	}
	return compare(base.Benchmarks, current)
}

// measure shells out to go test and folds the output into per-benchmark
// results, keeping the minimum ns/op (and allocs, which never vary)
// across -count repetitions.
func measure() (map[string]Bench, error) {
	args := []string{"test", "-run", "^$", "-bench", *benchRE,
		"-benchmem", "-benchtime", *benchtime, "-count", strconv.Itoa(*count), "."}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %w\n%s", strings.Join(args, " "), err, out)
	}
	results := map[string]Bench{}
	for _, line := range strings.Split(string(out), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		b, err := parseValues(m[3])
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", line, err)
		}
		if prev, ok := results[m[1]]; ok {
			b = minBench(prev, b)
		}
		results[m[1]] = b
	}
	return results, nil
}

// parseValues decodes the value/unit pairs after the iteration count
// ("488762 ns/op 4.072 ns/step 0 B/op 0 allocs/op").
func parseValues(rest string) (Bench, error) {
	fields := strings.Fields(rest)
	b := Bench{}
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return b, fmt.Errorf("value %q: %w", fields[i], err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsOp = v
		case "B/op":
			b.BOp = v
		case "allocs/op":
			b.AllocsOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, nil
}

func minBench(a, b Bench) Bench {
	out := a
	if b.NsOp < out.NsOp {
		out.NsOp = b.NsOp
		out.Metrics = b.Metrics
	}
	if b.BOp < out.BOp {
		out.BOp = b.BOp
	}
	if b.AllocsOp < out.AllocsOp {
		out.AllocsOp = b.AllocsOp
	}
	return out
}

// compare reports every baseline benchmark against the current run and
// fails on time regressions beyond the band, any meaningful allocation
// growth, or baseline benchmarks that no longer run.
func compare(base, current map[string]Bench) error {
	names := make([]string, 0, len(base))
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)

	var failures []string
	for _, n := range names {
		b := base[n]
		c, ok := current[n]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but did not run (renamed or deleted?)", n))
			continue
		}
		status := "ok"
		if c.NsOp > b.NsOp*(1+*timeTol) {
			status = "TIME REGRESSION"
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (+%.0f%%, tolerance %.0f%%)",
				n, c.NsOp, b.NsOp, 100*(c.NsOp/b.NsOp-1), 100**timeTol))
		}
		if c.AllocsOp > b.AllocsOp*(1+*allocTol)+2 {
			status = "ALLOC REGRESSION"
			failures = append(failures, fmt.Sprintf("%s: %.0f allocs/op vs baseline %.0f",
				n, c.AllocsOp, b.AllocsOp))
		}
		if *verbose || status != "ok" {
			fmt.Printf("%-44s %12.0f ns/op (base %12.0f)  %6.0f allocs/op (base %6.0f)  %s\n",
				n, c.NsOp, b.NsOp, c.AllocsOp, b.AllocsOp, status)
		}
	}
	var fresh []string
	for n := range current {
		if _, ok := base[n]; !ok {
			fresh = append(fresh, n)
		}
	}
	sort.Strings(fresh)
	for _, n := range fresh {
		if *verbose {
			fmt.Printf("%-44s new benchmark (not in baseline; add with -write)\n", n)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d regression(s) against %s:\n  %s",
			len(failures), *baseline, strings.Join(failures, "\n  "))
	}
	fmt.Printf("benchdiff: %d benchmarks within tolerance (time +%.0f%%, allocs +%.0f%%+2)\n",
		len(base), 100**timeTol, 100**allocTol)
	return nil
}
