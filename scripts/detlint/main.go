// Command detlint is the repo's determinism self-lint: a go/ast pass
// over our own Go source enforcing the contracts that keep every
// rendered artifact byte-stable across runs and worker counts.
//
// Rules:
//
//	det-time       time.Now outside internal/obs. Wall-clock reads feed
//	               nondeterminism into anything they touch; the obs
//	               layer is the one place allowed to own them (it strips
//	               durations from deterministic output).
//	det-rand       math/rand imports outside internal/obs. Randomness in
//	               simulation or rendering code breaks replay; seeded
//	               streams belong to the RNG plumbed through configs.
//	det-map-range  a `for ... range` directly over a map whose body
//	               renders output (fmt printing, Writer methods, Encode).
//	               Map iteration order is randomized; collect the keys,
//	               sort, and range the slice instead.
//
// A finding is suppressed by a `//detlint:allow <rule>` comment on the
// offending line or the line above it — use it where wall-clock time is
// genuinely wanted (watchdogs, live profiling) and say why.
//
// Usage: go run ./scripts/detlint [dir]   (default: .)
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// exemptDirs are the packages allowed to read wall clocks and entropy:
// the obs layer (which strips durations from deterministic output) and
// the serving layer (deadlines, backoff, and Retry-After hints are
// wall-clock by nature; its response *bodies* stay deterministic — they
// are rendered purely from engine results, enforced by mserve's tests).
var exemptDirs = []string{"internal/obs", "internal/mserve"}

// exemptDir names the canonical exemption in messages.
const exemptDir = "internal/obs (or the serving layer)"

func isExempt(rel string) bool {
	for _, d := range exemptDirs {
		if strings.HasPrefix(rel, d+"/") {
			return true
		}
	}
	return false
}

type finding struct {
	pos  token.Position
	rule string
	msg  string
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	findings, err := lintTree(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Printf("%s:%d: %s: %s\n", f.pos.Filename, f.pos.Line, f.rule, f.msg)
	}
	if len(findings) > 0 {
		fmt.Printf("detlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func lintTree(root string) ([]finding, error) {
	var findings []finding
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" || d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			rel = path
		}
		fs, err := lintFile(path, filepath.ToSlash(rel))
		if err != nil {
			return err
		}
		findings = append(findings, fs...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		return a.pos.Line < b.pos.Line
	})
	return findings, nil
}

func lintFile(path, rel string) ([]finding, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	exempt := isExempt(rel)
	allowed := allowLines(fset, f)
	var findings []finding
	add := func(pos token.Pos, rule, msg string) {
		p := fset.Position(pos)
		if allowed[lineRule{p.Line, rule}] || allowed[lineRule{p.Line - 1, rule}] {
			return
		}
		findings = append(findings, finding{pos: p, rule: rule, msg: msg})
	}

	timeName := importName(f, "time")
	if !exempt {
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			if p == "math/rand" || p == "math/rand/v2" {
				add(imp.Pos(), "det-rand", fmt.Sprintf("import of %s outside %s", p, exemptDir))
			}
		}
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if exempt || timeName == "" {
				return true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == timeName && id.Obj == nil && sel.Sel.Name == "Now" {
					add(n.Pos(), "det-time", fmt.Sprintf("time.Now outside %s (nondeterministic; obs owns wall clocks)", exemptDir))
				}
			}
		case *ast.RangeStmt:
			if isMapExpr(n.X) && rendersOutput(n.Body) {
				add(n.Pos(), "det-map-range",
					"range over a map feeds rendered output; collect keys, sort, then range the slice")
			}
		}
		return true
	})
	return findings, nil
}

type lineRule struct {
	line int
	rule string
}

// allowLines indexes `//detlint:allow <rule>` suppressions by line.
func allowLines(fset *token.FileSet, f *ast.File) map[lineRule]bool {
	out := map[lineRule]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			rest, ok := strings.CutPrefix(text, "detlint:allow")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			out[lineRule{fset.Position(c.Pos()).Line, fields[0]}] = true
		}
	}
	return out
}

// importName returns the name the file binds a standard import to, or
// "" when the path is not imported. Dot and blank imports return "".
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p, _ := strconv.Unquote(imp.Path.Value)
		if p != path {
			continue
		}
		if imp.Name == nil {
			return path[strings.LastIndex(path, "/")+1:]
		}
		if imp.Name.Name == "." || imp.Name.Name == "_" {
			return ""
		}
		return imp.Name.Name
	}
	return ""
}

// isMapExpr reports whether e is syntactically known to be a map: a map
// composite literal, a make(map[...]...), or an identifier whose local
// declaration has one of those shapes. Identifiers the parser cannot
// resolve (fields, imports) are conservatively not maps — this is a
// self-lint heuristic, not a type checker.
func isMapExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		_, ok := e.Type.(*ast.MapType)
		return ok
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && len(e.Args) > 0 {
			_, ok := e.Args[0].(*ast.MapType)
			return ok
		}
	case *ast.Ident:
		if e.Obj == nil {
			return false
		}
		switch decl := e.Obj.Decl.(type) {
		case *ast.ValueSpec:
			if _, ok := decl.Type.(*ast.MapType); ok {
				return true
			}
			for i, name := range decl.Names {
				if name.Name == e.Name && i < len(decl.Values) && isMapExpr(decl.Values[i]) {
					return true
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range decl.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name != e.Name {
					continue
				}
				if len(decl.Rhs) == len(decl.Lhs) && isMapExpr(decl.Rhs[i]) {
					return true
				}
			}
		case *ast.Field:
			_, ok := decl.Type.(*ast.MapType)
			return ok
		}
	}
	return false
}

// renderCalls are method/function names whose invocation inside a map
// range marks the loop as feeding rendered output.
var renderCalls = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true,
}

func rendersOutput(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && renderCalls[sel.Sel.Name] {
			found = true
			return false
		}
		return true
	})
	return found
}
